(* Randomized multi-process programs over shared-memory synchronization:
   cross-process mutual exclusion, token conservation through shared
   semaphores, and machine-level determinism. *)

open Tu
open Pthreads

type mop =
  | Mlock_incr of int  (* lock shared mutex i, bump its counter, unlock *)
  | Mbusy of int
  | Mdelay of int
  | Mpost of int
  | Mtake_nb of int

let mop_gen =
  QCheck2.Gen.(
    frequency
      [
        (4, map (fun i -> Mlock_incr (i mod 2)) small_nat);
        (2, map (fun n -> Mbusy (2_000 + (n mod 5) * 2_000)) small_nat);
        (1, map (fun n -> Mdelay (20_000 + (n mod 3) * 20_000)) small_nat);
        (2, map (fun i -> Mpost (i mod 2)) small_nat);
        (2, map (fun i -> Mtake_nb (i mod 2)) small_nat);
      ])

type mprogram = { procs : mop list list; seeds : int list }

let mprogram_gen =
  QCheck2.Gen.(
    let* n_procs = int_range 2 3 in
    let* procs = list_repeat n_procs (list_size (int_range 2 8) mop_gen) in
    let* seeds = list_repeat n_procs (int_range 0 1000) in
    return { procs; seeds })

(* Returns (counters, exclusion_ok). *)
let execute prog =
  let m = Machine.create () in
  let monitors = ref [] in
  let mutexes = Array.init 2 (fun i -> Shared.mutex_create ~name:(Printf.sprintf "sm%d" i) ()) in
  let sems = Array.init 2 (fun _ -> Shared.semaphore_create 1) in
  let counters = Array.make 2 0 in
  let inside = Array.make 2 0 in
  let bad = ref false in
  List.iteri
    (fun i (ops, seed) ->
      let proc_handle =
        Machine.spawn m ~seed ~name:(Printf.sprintf "P%d" i) (fun proc ->
             List.iter
               (fun op ->
                 match op with
                 | Mlock_incr mi ->
                     Shared.lock proc mutexes.(mi);
                     inside.(mi) <- inside.(mi) + 1;
                     if inside.(mi) > 1 then bad := true;
                     let v = counters.(mi) in
                     Pthread.busy proc ~ns:3_000;
                     counters.(mi) <- v + 1;
                     inside.(mi) <- inside.(mi) - 1;
                     Shared.unlock proc mutexes.(mi)
                 | Mbusy ns -> Pthread.busy proc ~ns
                 | Mdelay ns -> Pthread.delay proc ~ns
                 | Mpost i -> Shared.sem_post proc sems.(i)
                 | Mtake_nb i -> ignore (Shared.sem_try_wait proc sems.(i) : bool))
               ops;
             0)
      in
      monitors := Validate.install proc_handle :: !monitors)
    (List.combine prog.procs prog.seeds);
  match Machine.run m with
  | results ->
      let ok =
        List.for_all
          (fun (_, r) ->
            match r with
            | Machine.Completed (Some (Types.Exited 0)) -> true
            | _ -> false)
          results
      in
      let clean =
        List.for_all (fun mon -> Validate.violations mon = []) !monitors
      in
      Some (Array.copy counters, (not !bad) && ok && clean)
  | exception Machine.Machine_deadlock _ -> None

let expected prog =
  List.fold_left
    (fun acc ops ->
      List.fold_left
        (fun acc op -> match op with Mlock_incr _ -> acc + 1 | _ -> acc)
        acc ops)
    0 prog.procs

let prop_cross_process_exclusion =
  qcheck ~count:40 ~seed_key:"machine_fuzz" "machine fuzz: exclusion + conservation" mprogram_gen
    (fun prog ->
      match execute prog with
      | None -> true (* no lock nesting here, but accept machine deadlock *)
      | Some (counters, ok) ->
          ok && Array.fold_left ( + ) 0 counters = expected prog)

let prop_machine_deterministic =
  qcheck ~count:20 ~seed_key:"machine_fuzz" "machine fuzz: deterministic" mprogram_gen (fun prog ->
      match (execute prog, execute prog) with
      | None, None -> true
      | Some (c1, ok1), Some (c2, ok2) -> c1 = c2 && ok1 = ok2
      | _ -> false)

let suite =
  [
    ( "machine_fuzz",
      [ prop_cross_process_exclusion; prop_machine_deterministic ] );
  ]
