(** Test utilities shared by the suites. *)

open Pthreads
module Sigset = Vm.Sigset

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

(* Run a simulated process and return main's exit code, failing the test on
   anything but a normal exit. *)
let run_main ?profile ?policy ?perverted ?seed ?use_pool ?trace ?main_prio
    ?ceiling_mode f =
  let status, _stats =
    Pthread.run ?profile ?policy ?perverted ?seed ?use_pool ?trace ?main_prio
      ?ceiling_mode f
  in
  match status with
  | Some (Types.Exited v) -> v
  | Some st -> Alcotest.failf "main did not exit normally: %a" Types.pp_exit_status st
  | None -> Alcotest.fail "main thread was reaped"

(* Run and also return the statistics. *)
let run_stats ?policy ?perverted ?seed ?use_pool f =
  let status, stats = Pthread.run ?policy ?perverted ?seed ?use_pool f in
  (match status with
  | Some (Types.Exited _) -> ()
  | Some st -> Alcotest.failf "main did not exit normally: %a" Types.pp_exit_status st
  | None -> Alcotest.fail "main thread was reaped");
  stats

let exit_status : Types.exit_status Alcotest.testable =
  Alcotest.testable Types.pp_exit_status (fun a b ->
      match (a, b) with
      | Types.Exited x, Types.Exited y -> x = y
      | Types.Canceled, Types.Canceled -> true
      | Types.Failed _, Types.Failed _ -> true
      | _ -> false)

let tc name f = Alcotest.test_case name `Quick f

(* One table of pinned seeds for every randomized suite.  A failure in a
   randomized test must be reproducible from the test output alone, so the
   seed is part of the test name (Alcotest prints it on failure) and a
   deliberate reseed is a visible one-line diff here, not an invisible
   change of [Random] self-initialization. *)
let seeds =
  [
    ("fuzz", 0x5EED_F022);
    ("machine_fuzz", 0x5EED_ACE1);
    ("soak", 0x5EED_50AD);
    ("sample", 0x5EED_09C7);
    ("shrink", 0x5EED_5A1C);
    ("qlock", 0x5EED_910C);
    ("parallel", 0x5EED_0A11);
  ]

let seed_of key =
  match List.assoc_opt key seeds with
  | Some s -> s
  | None -> invalid_arg ("Tu.seed_of: unknown seed key " ^ key)

let qcheck ?(count = 200) ?seed_key name gen prop =
  let name, rand =
    match seed_key with
    | None -> (name, None)
    | Some key ->
        let s = seed_of key in
        ( Printf.sprintf "%s [seed %#x]" name s,
          Some (Random.State.make [| s |]) )
  in
  QCheck_alcotest.to_alcotest ?rand (QCheck2.Test.make ~name ~count gen prop)
