(* Heap/pool model and the UNIX-process baseline. *)

open Tu
module K = Vm.Unix_kernel
module Heap = Vm.Heap
module Cost_model = Vm.Cost_model
module Unix_process = Vm.Unix_process
module Clock = Vm.Clock

let mk ~use_pool =
  let k = K.create Cost_model.sparc_ipx in
  (k, Heap.create k ~use_pool ())

let test_alloc_sbrk () =
  let k, h = mk ~use_pool:false in
  Heap.alloc h 1_000;
  check bool "first alloc grows arena via sbrk" true
    (List.mem_assoc "sbrk" (K.trap_counts k));
  let traps = K.trap_count k in
  Heap.alloc h 1_000;
  check int "second alloc comes from arena" traps (K.trap_count k)

let test_alloc_exhaustion () =
  let k, h = mk ~use_pool:false in
  Heap.alloc h 1_000;
  Heap.alloc h (512 * 1024);
  check int "large alloc takes another sbrk" 2
    (List.assoc "sbrk" (K.trap_counts k))

let test_pool_cheap () =
  let k, h = mk ~use_pool:true in
  Heap.preallocate h 4;
  let allocs = Heap.allocations h in
  let t0 = K.now k in
  Heap.acquire_slab h;
  check int "no allocator call" allocs (Heap.allocations h);
  check bool "pool pop is cheap" true
    (K.now k - t0 < Cost_model.insns Cost_model.sparc_ipx 50);
  check int "pool shrank" 3 (Heap.pool_size h)

let test_pool_exhaustion_falls_back () =
  let _, h = mk ~use_pool:true in
  Heap.preallocate h 1;
  Heap.acquire_slab h;
  let allocs = Heap.allocations h in
  Heap.acquire_slab h;
  (* with the pool on, an exhausted acquire carves one contiguous slab *)
  check int "fell back to allocator" (allocs + 1) (Heap.allocations h)

let test_release_refills_pool () =
  let _, h = mk ~use_pool:true in
  Heap.preallocate h 1;
  Heap.acquire_slab h;
  Heap.release_slab h;
  check int "slab returned" 1 (Heap.pool_size h)

let test_pool_disabled () =
  let _, h = mk ~use_pool:false in
  Heap.acquire_slab h;
  check int "allocator used for TCB and stack" 2 (Heap.allocations h)

(* The paper's Table 2 baselines (SPARC IPX column): UNIX signal handler
   154 us, UNIX process context switch 123 us.  The shape matters: the
   process switch must be several times a thread switch (~37 us), and the
   signal handler in the low hundreds of us. *)
let test_signal_roundtrip_shape () =
  let us = Unix_process.signal_roundtrip_ns Cost_model.sparc_ipx ~iterations:100 /. 1e3 in
  check bool (Printf.sprintf "signal handler ~154us (got %.1f)" us) true
    (us > 120.0 && us < 190.0)

let test_process_switch_shape () =
  let us = Unix_process.context_switch_ns Cost_model.sparc_ipx ~iterations:100 /. 1e3 in
  check bool (Printf.sprintf "process switch ~123us (got %.1f)" us) true
    (us > 95.0 && us < 150.0)

let test_process_switch_dwarfs_thread_switch () =
  let proc_sw = Unix_process.context_switch_ns Cost_model.sparc_ipx ~iterations:100 in
  check bool "process switch >> 37us thread switch" true
    (proc_sw > 2.0 *. 37_000.0)

let test_sparc1plus_slower () =
  let ipx = Unix_process.signal_roundtrip_ns Cost_model.sparc_ipx ~iterations:50 in
  let one = Unix_process.signal_roundtrip_ns Cost_model.sparc_1plus ~iterations:50 in
  check bool "1+ slower" true (one > ipx *. 1.3)

let suite =
  [
    ( "vm.heap",
      [
        tc "alloc sbrk" test_alloc_sbrk;
        tc "arena exhaustion" test_alloc_exhaustion;
        tc "pool cheap" test_pool_cheap;
        tc "pool exhaustion fallback" test_pool_exhaustion_falls_back;
        tc "release refills" test_release_refills_pool;
        tc "pool disabled" test_pool_disabled;
      ] );
    ( "vm.unix_process",
      [
        tc "signal roundtrip shape" test_signal_roundtrip_shape;
        tc "process switch shape" test_process_switch_shape;
        tc "process >> thread switch" test_process_switch_dwarfs_thread_switch;
        tc "SPARC 1+ slower" test_sparc1plus_slower;
      ] );
  ]
