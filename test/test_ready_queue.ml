(* Ready-queue internals (exercised through a raw engine). *)

open Tu
open Pthreads
open Pthreads.Types
module RQ = Pthreads.Ready_queue

let mk_engine () =
  Engine.make (Engine.default_config Vm.Cost_model.sparc_ipx) ~main:(fun () -> 0)

let mk_tcb tid prio =
  Pthreads.Tcb.make ~tid ~name:(Printf.sprintf "t%d" tid) ~prio ~detached:false
    ~body:(fun () -> 0)
    ~deferred:false

let drain eng =
  let rec go acc =
    match RQ.pop_highest eng with
    | Some t -> go (t.tid :: acc)
    | None -> List.rev acc
  in
  go []

let test_pop_highest_order () =
  let eng = mk_engine () in
  RQ.remove eng (Engine.current eng);
  (* clear main *)
  ignore (RQ.pop_highest eng);
  RQ.push_tail eng (mk_tcb 1 5);
  RQ.push_tail eng (mk_tcb 2 20);
  RQ.push_tail eng (mk_tcb 3 10);
  check (Alcotest.list int) "descending priority" [ 2; 3; 1 ] (drain eng)

let test_fifo_within_level () =
  let eng = mk_engine () in
  ignore (RQ.pop_highest eng);
  RQ.push_tail eng (mk_tcb 1 7);
  RQ.push_tail eng (mk_tcb 2 7);
  RQ.push_tail eng (mk_tcb 3 7);
  check (Alcotest.list int) "FIFO" [ 1; 2; 3 ] (drain eng)

let test_push_head () =
  let eng = mk_engine () in
  ignore (RQ.pop_highest eng);
  RQ.push_tail eng (mk_tcb 1 7);
  RQ.push_head eng (mk_tcb 2 7);
  check (Alcotest.list int) "head first" [ 2; 1 ] (drain eng)

let test_push_tail_lowest () =
  let eng = mk_engine () in
  ignore (RQ.pop_highest eng);
  let hi = mk_tcb 1 25 in
  RQ.push_tail_lowest eng hi;
  RQ.push_tail eng (mk_tcb 2 3);
  (* hi sits in the lowest queue despite its priority field *)
  check (Alcotest.list int) "positional demotion" [ 2; 1 ] (drain eng)

let test_remove () =
  let eng = mk_engine () in
  ignore (RQ.pop_highest eng);
  let a = mk_tcb 1 7 and b = mk_tcb 2 7 in
  RQ.push_tail eng a;
  RQ.push_tail eng b;
  RQ.remove eng a;
  check (Alcotest.list int) "removed" [ 2 ] (drain eng)

let test_size_iter () =
  let eng = mk_engine () in
  ignore (RQ.pop_highest eng);
  RQ.push_tail eng (mk_tcb 1 1);
  RQ.push_tail eng (mk_tcb 2 30);
  check int "size" 2 (RQ.size eng);
  let seen = ref 0 in
  RQ.iter eng (fun _ -> incr seen);
  check int "iter visits all" 2 !seen

let test_pop_random_deterministic () =
  let rng1 = Vm.Rng.create 9 and rng2 = Vm.Rng.create 9 in
  let run rng =
    let eng = mk_engine () in
    ignore (RQ.pop_highest eng);
    List.iter (fun i -> RQ.push_tail eng (mk_tcb i (i mod 4))) [ 1; 2; 3; 4; 5 ];
    let rec go acc =
      match RQ.pop_random eng rng with
      | Some t -> go (t.tid :: acc)
      | None -> List.rev acc
    in
    go []
  in
  check (Alcotest.list int) "same seed, same order" (run rng1) (run rng2)

let test_pop_random_empty () =
  let eng = mk_engine () in
  ignore (RQ.pop_highest eng);
  check bool "none" true (RQ.pop_random eng (Vm.Rng.create 1) = None)

let prop_pop_sorted =
  qcheck ~count:100 "pop_highest yields non-increasing priorities"
    QCheck2.Gen.(small_list (int_range 0 31))
    (fun prios ->
      let eng = mk_engine () in
      ignore (RQ.pop_highest eng);
      List.iteri (fun i p -> RQ.push_tail eng (mk_tcb i p)) prios;
      let rec go last =
        match RQ.pop_highest eng with
        | None -> true
        | Some t -> t.prio <= last && go t.prio
      in
      go max_prio)

(* ------------------------------------------------------------------ *)
(* Model-based property tests: the bitmap/intrusive implementation vs.
   the seed's naive list representation.                               *)
(* ------------------------------------------------------------------ *)

(* Reference model: level -> tid list, FIFO within a level — exactly the
   [tcb list array] the ready queue used to be. *)
module Model = struct
  type t = int list array

  let create () = Array.make n_prios []
  let push_tail m p tid = m.(p) <- m.(p) @ [ tid ]
  let push_head m p tid = m.(p) <- tid :: m.(p)
  let mem m tid = Array.exists (List.mem tid) m
  let remove m tid =
    Array.iteri (fun i l -> m.(i) <- List.filter (( <> ) tid) l) m

  let size m = Array.fold_left (fun a l -> a + List.length l) 0 m

  let pop_highest m =
    let rec go p =
      if p < min_prio then None
      else
        match m.(p) with
        | [] -> go (p - 1)
        | tid :: rest ->
            m.(p) <- rest;
            Some tid
    in
    go max_prio

  (* The seed's pop_random: one uniform draw over all queued threads,
     counted from the highest level down. *)
  let pop_random m rng =
    let n = size m in
    if n = 0 then None
    else begin
      let idx = Vm.Rng.int rng n in
      let seen = ref 0 and found = ref None and p = ref max_prio in
      while !found = None && !p >= min_prio do
        let l = m.(!p) in
        let len = List.length l in
        if idx < !seen + len then begin
          let tid = List.nth l (idx - !seen) in
          m.(!p) <- List.filter (( <> ) tid) l;
          found := Some tid
        end;
        seen := !seen + len;
        decr p
      done;
      !found
    end
end

let pool_size = 6

(* An op is (kind, thread index, priority); pushes of an already-queued
   thread are skipped on both sides, like the kernel's invariant that a
   thread occupies at most one queue. *)
let gen_ops =
  QCheck2.Gen.(
    list_size (int_range 1 60)
      (triple (int_range 0 4) (int_range 0 (pool_size - 1)) (int_range 0 31)))

let run_model_trace ops ~pop =
  let eng = mk_engine () in
  ignore (RQ.pop_highest eng);
  let model = Model.create () in
  let pool = Array.init pool_size (fun i -> mk_tcb (i + 1) 0) in
  let ok = ref true in
  let record_pop real_tid model_tid =
    if real_tid <> model_tid then ok := false
  in
  let opt_tid = function Some (t : tcb) -> t.tid | None -> -1 in
  let model_tid = function Some tid -> tid | None -> -1 in
  List.iter
    (fun (kind, idx, prio) ->
      let t = pool.(idx) in
      let queued = t.q_in != Pthreads.Types.nil_pq in
      if queued <> Model.mem model t.tid then ok := false;
      match kind with
      | 0 ->
          if not queued then begin
            t.prio <- prio;
            RQ.push_tail eng t;
            Model.push_tail model prio t.tid
          end
      | 1 ->
          if not queued then begin
            t.prio <- prio;
            RQ.push_head eng t;
            Model.push_head model prio t.tid
          end
      | 2 ->
          if not queued then begin
            t.prio <- prio;
            RQ.push_tail_lowest eng t;
            Model.push_tail model min_prio t.tid
          end
      | 3 -> record_pop (opt_tid (pop eng)) (model_tid (Model.pop_highest model))
      | _ ->
          RQ.remove eng t;
          Model.remove model t.tid)
    ops;
  if RQ.size eng <> Model.size model then ok := false;
  (* drain both and require identical order *)
  let rec drain_both () =
    let r = opt_tid (pop eng) and m = model_tid (Model.pop_highest model) in
    record_pop r m;
    if r <> -1 || m <> -1 then drain_both ()
  in
  drain_both ();
  !ok

let prop_model_fifo =
  qcheck ~count:300 "bitmap queue = list model (Fifo/Rr pop order)" gen_ops
    (fun ops -> run_model_trace ops ~pop:RQ.pop_highest)

let prop_model_random =
  qcheck ~count:300
    "bitmap queue = list model (Random_switch pop order, paired RNG)"
    QCheck2.Gen.(pair gen_ops (int_range 0 10_000))
    (fun (ops, seed) ->
      (* same seed on both sides: the draws must line up exactly *)
      let rng_real = Vm.Rng.create seed and rng_model = Vm.Rng.create seed in
      let eng = mk_engine () in
      ignore (RQ.pop_highest eng);
      let model = Model.create () in
      let pool = Array.init pool_size (fun i -> mk_tcb (i + 1) 0) in
      let ok = ref true in
      List.iter
        (fun (kind, idx, prio) ->
          let t = pool.(idx) in
          let queued = t.q_in != Pthreads.Types.nil_pq in
          match kind with
          | 0 | 1 | 2 ->
              if not queued then begin
                t.prio <- prio;
                RQ.push_tail eng t;
                Model.push_tail model prio t.tid
              end
          | 3 ->
              let r =
                match RQ.pop_random eng rng_real with
                | Some t -> t.tid
                | None -> -1
              and m =
                match Model.pop_random model rng_model with
                | Some tid -> tid
                | None -> -1
              in
              if r <> m then ok := false
          | _ ->
              RQ.remove eng t;
              Model.remove model t.tid)
        ops;
      let rec drain () =
        let r =
          match RQ.pop_random eng rng_real with Some t -> t.tid | None -> -1
        and m =
          match Model.pop_random model rng_model with
          | Some tid -> tid
          | None -> -1
        in
        if r <> m then ok := false;
        if r <> -1 || m <> -1 then drain ()
      in
      drain ();
      !ok)

(* Wait-queue model: the seed kept waiter lists sorted by descending
   priority (FIFO within a level) via [Tcb.insert_by_prio] and re-sorted
   with [List.stable_sort] after a priority change.  The bucketed queue
   must reproduce that order exactly, including after [reposition]. *)
module WQ = Pthreads.Wait_queue

let prop_wait_queue_model =
  qcheck ~count:300 "wait queue = insert_by_prio/stable_sort reference"
    QCheck2.Gen.(
      list_size (int_range 1 60)
        (triple (int_range 0 3) (int_range 0 (pool_size - 1)) (int_range 0 31)))
    (fun ops ->
      let q = WQ.create () in
      let pool = Array.init pool_size (fun i -> mk_tcb (i + 1) 0) in
      (* reference: (tid, prio) list, head = highest priority, oldest first
         within a level *)
      let model = ref [] in
      let ref_insert tid p =
        let rec go = function
          | ((_, p') as x) :: rest when p' >= p -> x :: go rest
          | rest -> (tid, p) :: rest
        in
        model := go !model
      in
      let ref_resort () =
        model :=
          List.stable_sort (fun (_, a) (_, b) -> compare b a) !model
      in
      let ok = ref true in
      let agree () =
        let real = List.map (fun (t : tcb) -> t.tid) (WQ.to_list q) in
        let expect = List.map fst !model in
        if real <> expect then ok := false
      in
      List.iter
        (fun (kind, idx, prio) ->
          let t = pool.(idx) in
          let queued = t.q_in != Pthreads.Types.nil_pq in
          (match kind with
          | 0 ->
              if not queued then begin
                t.prio <- prio;
                WQ.push_tail q t;
                ref_insert t.tid prio
              end
          | 1 ->
              WQ.remove q t;
              model := List.filter (fun (tid, _) -> tid <> t.tid) !model
          | 2 ->
              (* priority change of a queued waiter (inheritance/ceiling) *)
              if queued && t.prio <> prio then begin
                let old_prio = t.prio in
                t.prio <- prio;
                WQ.reposition q t ~old_prio;
                model :=
                  List.map
                    (fun (tid, p) -> if tid = t.tid then (tid, prio) else (tid, p))
                    !model;
                ref_resort ()
              end
          | _ -> (
              let r =
                match WQ.pop_highest q with Some t -> t.tid | None -> -1
              and m =
                match !model with
                | (tid, _) :: rest ->
                    model := rest;
                    tid
                | [] -> -1
              in
              if r <> m then ok := false));
          agree ())
        ops;
      !ok)

let suite =
  [
    ( "ready_queue",
      [
        tc "pop highest" test_pop_highest_order;
        tc "FIFO within level" test_fifo_within_level;
        tc "push head" test_push_head;
        tc "push tail lowest" test_push_tail_lowest;
        tc "remove" test_remove;
        tc "size/iter" test_size_iter;
        tc "pop random deterministic" test_pop_random_deterministic;
        tc "pop random empty" test_pop_random_empty;
        prop_pop_sorted;
        prop_model_fifo;
        prop_model_random;
        prop_wait_queue_model;
      ] );
  ]
