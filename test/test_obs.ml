(* The observability layer: log2 histograms, the Chrome trace-event
   export, and the contention/dispatch-latency profiles — each checked
   against an independent accounting of the same trace. *)

open Tu
open Pthreads
module Trace = Vm.Trace
module Trace_stats = Vm.Trace_stats
module H = Obs.Histogram
module Json = Obs.Json

(* ---------------- histograms ---------------- *)

let test_histogram_basics () =
  let h = H.create () in
  List.iter (H.add h) [ 0; 1; 5; 5; 1024 ];
  check int "count" 5 (H.count h);
  check int "total" 1035 (H.total h);
  check int "max" 1024 (H.max_value h);
  check bool "mean" true (abs_float (H.mean h -. 207.0) < 0.001);
  check bool "buckets are [0,1) [1,2) [4,8) [1024,2048)" true
    (H.buckets h = [ (0, 1, 1); (1, 2, 1); (4, 8, 2); (1024, 2048, 1) ])

let test_histogram_percentile () =
  let h = H.create () in
  for _ = 1 to 100 do
    H.add h 1
  done;
  H.add h 1000;
  check int "p50 is the small bucket's upper bound" 2 (H.percentile h 50.0);
  check int "p100 reaches the outlier's bucket" 1024 (H.percentile h 100.0);
  check int "empty histogram percentiles are 0" 0
    (H.percentile (H.create ()) 99.0)

(* ---------------- a traced contention scenario ---------------- *)

(* Three workers fighting over one mutex, with enough busy time inside
   the critical section that every profile has something to measure. *)
let contended_proc () =
  let proc =
    Pthread.make_proc ~trace:true (fun proc ->
        let m = Mutex.create proc ~name:"hot" ()
        and quiet = Mutex.create proc ~name:"quiet" () in
        let worker i =
          Pthread.create_unit proc
            ~attr:(Attr.with_name (Printf.sprintf "w%d" i) Attr.default)
            (fun () ->
              for _ = 1 to 3 do
                Mutex.lock proc m;
                Pthread.busy proc ~ns:20_000;
                (* yield while holding: the other workers run and block *)
                Pthread.yield proc;
                Pthread.busy proc ~ns:5_000;
                Mutex.unlock proc m;
                Mutex.lock proc quiet;
                Mutex.unlock proc quiet;
                Pthread.yield proc
              done)
        in
        let ws = List.init 3 worker in
        List.iter (fun t -> ignore (Pthread.join proc t)) ws;
        0)
  in
  Pthread.start proc;
  proc

(* ---------------- Chrome trace export ---------------- *)

let num = function Some (Json.Num f) -> Some f | _ -> None

let test_chrome_export_schema () =
  let proc = contended_proc () in
  let doc = Obs.Chrome_trace.export (Pthread.trace_events proc) in
  match Json.parse doc with
  | Error e -> Alcotest.failf "export does not parse: %s" e
  | Ok json -> (
      match Json.member "traceEvents" json with
      | Some (Json.Arr events) ->
          check bool "has events" true (List.length events > 10);
          (* per-tid timestamps monotone, metadata records aside *)
          let last : (float, float) Hashtbl.t = Hashtbl.create 8 in
          List.iter
            (fun ev ->
              match Json.member "ph" ev with
              | Some (Json.Str "M") -> ()
              | _ -> (
                  match
                    (num (Json.member "tid" ev), num (Json.member "ts" ev))
                  with
                  | Some tid, Some ts ->
                      (match Hashtbl.find_opt last tid with
                      | Some prev ->
                          check bool "ts monotone per tid" true (ts >= prev)
                      | None -> ());
                      Hashtbl.replace last tid ts
                  | _ -> ()))
            events
      | _ -> Alcotest.fail "no traceEvents array")

let test_slices_match_trace_stats () =
  let proc = contended_proc () in
  let events = Pthread.trace_events proc in
  let sums : (int, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (s : Obs.Chrome_trace.slice) ->
      let prev = Option.value ~default:0 (Hashtbl.find_opt sums s.s_tid) in
      Hashtbl.replace sums s.s_tid (prev + (s.s_end_ns - s.s_start_ns)))
    (Obs.Chrome_trace.running_slices events);
  let reports = Trace_stats.per_thread events in
  check bool "several threads" true (List.length reports >= 4);
  List.iter
    (fun (r : Trace_stats.thread_report) ->
      check int
        (Printf.sprintf "slice total of %s equals cpu_ns" r.Trace_stats.name)
        r.Trace_stats.cpu_ns
        (Option.value ~default:0 (Hashtbl.find_opt sums r.Trace_stats.tid)))
    reports

(* ---------------- contention and latency cross-checks ---------------- *)

let test_contention_cross_check () =
  let proc = contended_proc () in
  let events = Pthread.trace_events proc in
  let reports = Trace_stats.per_thread events in
  let contention = Obs.Contention.of_events events in
  let blocked_total =
    List.fold_left
      (fun n (r : Trace_stats.thread_report) -> n + r.Trace_stats.mutex_blocked_ns)
      0 reports
  in
  check int "total wait equals Trace_stats blocked time" blocked_total
    (Obs.Contention.total_wait_ns contention);
  let acq_total =
    List.fold_left
      (fun n (r : Trace_stats.thread_report) ->
        n + r.Trace_stats.lock_acquisitions)
      0 reports
  in
  check int "acquisitions equal Trace_stats acquisitions" acq_total
    (List.fold_left
       (fun n (r : Obs.Contention.report) -> n + r.Obs.Contention.acquisitions)
       0 contention);
  (* the hot mutex is the top offender, the uncontended one is not *)
  (match Obs.Contention.top_offenders ~limit:1 contention with
  | [ worst ] ->
      check string "worst is the hot mutex" "hot" worst.Obs.Contention.c_name;
      check bool "hot saw contended acquisitions" true
        (worst.Obs.Contention.contended > 0)
  | _ -> Alcotest.fail "no top offender");
  let quiet =
    List.find (fun r -> r.Obs.Contention.c_name = "quiet") contention
  in
  check int "quiet mutex never contended" 0 quiet.Obs.Contention.contended

let test_latency_one_sample_per_dispatch () =
  let proc = contended_proc () in
  let events = Pthread.trace_events proc in
  let latency = Obs.Latency.of_events events in
  check int "one sample per traced dispatch" (Engine.dispatch_count proc)
    (H.count latency);
  check bool "latencies are finite" true (H.max_value latency >= 0)

(* ---------------- golden export ---------------- *)

(* The same deterministic token-handoff scenario obs_demo regenerates
   with --golden: two threads alternating through one mutex + condvar.
   Virtual time makes the export reproducible byte for byte. *)
let small_events () =
  let proc =
    Pthread.make_proc ~trace:true (fun proc ->
        let m = Mutex.create proc ~name:"token" () in
        let c = Cond.create proc ~name:"handoff" () in
        let turn = ref 0 in
        let player me next =
          Pthread.create_unit proc
            ~attr:(Attr.with_name (Printf.sprintf "player%d" me) Attr.default)
            (fun () ->
              for _ = 1 to 2 do
                Mutex.lock proc m;
                while !turn <> me do
                  ignore (Cond.wait proc c m : Cond.wait_result)
                done;
                Pthread.busy proc ~ns:10_000;
                turn := next;
                Cond.broadcast proc c;
                Mutex.unlock proc m
              done)
        in
        let a = player 0 1 in
        let b = player 1 0 in
        ignore (Pthread.join proc a);
        ignore (Pthread.join proc b);
        0)
  in
  Pthread.start proc;
  Pthread.trace_events proc

let test_golden_chrome_export () =
  let golden =
    In_channel.with_open_text "golden/small.trace.json" In_channel.input_all
  in
  let doc = Obs.Chrome_trace.export ~process_name:"small" (small_events ()) in
  check bool "golden parses" true (Result.is_ok (Json.parse golden));
  check string "export matches the golden file" golden doc

let suite =
  [
    ( "obs",
      [
        tc "histogram basics" test_histogram_basics;
        tc "histogram percentile" test_histogram_percentile;
        tc "chrome export schema" test_chrome_export_schema;
        tc "slices match trace stats" test_slices_match_trace_stats;
        tc "contention cross-check" test_contention_cross_check;
        tc "latency per dispatch" test_latency_one_sample_per_dispatch;
        tc "golden chrome export" test_golden_chrome_export;
      ] );
  ]
