(* The fault-injection layer: errno surface, structured errors, plan
   serialization, the injection primitives, and the soak/shrink pipeline
   finding the seeded lost-wakeup bug. *)

open Tu
open Pthreads
module Plan = Fault.Plan
module Soak = Fault.Soak
module S = Check.Scenarios
module E = Check.Explore

(* ------------------------------------------------------------------ *)
(* Satellite 1: the errno type and its wire representation             *)
(* ------------------------------------------------------------------ *)

let all_errnos =
  Errno.
    [ EINVAL; EBUSY; EDEADLK; ESRCH; ETIMEDOUT; EPERM; EINTR; EAGAIN ]

let test_errno_roundtrip () =
  List.iter
    (fun e ->
      check bool
        ("of_int (to_int " ^ Errno.to_string e ^ ")")
        true
        (Errno.of_int (Errno.to_int e) = Some e);
      check bool
        ("of_string (to_string " ^ Errno.to_string e ^ ")")
        true
        (Errno.of_string (Errno.to_string e) = Some e))
    all_errnos;
  check bool "of_int 0 is None" true (Errno.of_int 0 = None);
  check bool "of_string junk is None" true (Errno.of_string "EJUNK" = None)

let test_flat_constants_are_errnos () =
  check int "EPERM" (Errno.to_int Errno.EPERM) Flat.eperm;
  check int "ESRCH" (Errno.to_int Errno.ESRCH) Flat.esrch;
  check int "EINTR" (Errno.to_int Errno.EINTR) Flat.eintr;
  check int "EAGAIN" (Errno.to_int Errno.EAGAIN) Flat.eagain;
  check int "EBUSY" (Errno.to_int Errno.EBUSY) Flat.ebusy;
  check int "EINVAL" (Errno.to_int Errno.EINVAL) Flat.einval;
  check int "EDEADLK" (Errno.to_int Errno.EDEADLK) Flat.edeadlk;
  check int "ETIMEDOUT" (Errno.to_int Errno.ETIMEDOUT) Flat.etimedout;
  check bool "errno_of_status eintr" true
    (Flat.errno_of_status Flat.eintr = Some Errno.EINTR);
  check bool "errno_of_status ok" true (Flat.errno_of_status Flat.ok = None);
  check int "status_of_errno" Flat.etimedout
    (Flat.status_of_errno Errno.ETIMEDOUT)

(* ------------------------------------------------------------------ *)
(* Satellite 2: the one structured exception                           *)
(* ------------------------------------------------------------------ *)

let test_structured_errors () =
  ignore
    (run_main (fun proc ->
         let m = Mutex.create proc () in
         (try
            Mutex.unlock proc m;
            Alcotest.fail "unowned unlock must raise"
          with Types.Error (Errno.EPERM, _) -> ());
         Mutex.lock proc m;
         (try
            Mutex.lock proc m;
            Alcotest.fail "relock must raise"
          with Types.Error (Errno.EDEADLK, _) -> ());
         Mutex.unlock proc m;
         (try
            ignore (Pthread.join proc (Pthread.self proc));
            Alcotest.fail "self-join must raise"
          with Types.Error (Errno.EDEADLK, _) -> ());
         (try
            ignore (Pthread.join proc 999);
            Alcotest.fail "join of no-such-thread must raise"
          with Types.Error (Errno.ESRCH, _) -> ());
         0));
  ()

(* ------------------------------------------------------------------ *)
(* Plans: generation and the .fault serialization                      *)
(* ------------------------------------------------------------------ *)

let every_kind_plan =
  Plan.
    [
      { at = 0; act = Spurious_wakeup 2 };
      { at = 1; act = Preempt };
      { at = 3; act = Trap_fault ("read", Errno.EINTR) };
      { at = 5; act = Signal_burst { signo = 30; count = 2; thread = None } };
      { at = 5; act = Signal_burst { signo = 31; count = 1; thread = Some 1 } };
      { at = 7; act = Cancel 0 };
      { at = 9; act = Clock_jump 1_000_000 };
    ]

let test_plan_roundtrip () =
  let s = Plan.to_string every_kind_plan in
  (match Plan.of_string s with
  | Ok p -> check bool "roundtrip equal" true (Plan.equal p every_kind_plan)
  | Error e -> Alcotest.fail e);
  (* comment and blank-line tolerance *)
  (match Plan.of_string ("# pthreads-fault plan v1\n\n# note\n@2 preempt\n")
   with
  | Ok p -> check bool "comments ok" true (Plan.equal p [ { at = 2; act = Preempt } ])
  | Error e -> Alcotest.fail e);
  (match Plan.of_string "@1 warp-core-breach" with
  | Ok _ -> Alcotest.fail "garbage must not parse"
  | Error _ -> ());
  match Plan.of_string "no header\n" with
  | Ok _ -> Alcotest.fail "missing header must not parse"
  | Error _ -> ()

let test_plan_random_deterministic () =
  let kinds = Plan.safe_kinds in
  let p1 = Plan.random ~seed:42 ~points:50 ~budget:6 kinds in
  let p2 = Plan.random ~seed:42 ~points:50 ~budget:6 kinds in
  check bool "same seed, same plan" true (Plan.equal p1 p2);
  check bool "within budget" true (Plan.length p1 <= 6);
  check bool "non-empty at this seed" true (Plan.length p1 > 0);
  List.iter
    (fun (i : Plan.injection) ->
      check bool "point in range" true (i.at >= 0 && i.at < 50))
    p1

(* ------------------------------------------------------------------ *)
(* Injection against correct code: the robust suite absorbs faults     *)
(* ------------------------------------------------------------------ *)

(* A correct predicate loop absorbs injected spurious wakeups. *)
let test_spurious_absorbed_by_predicate_loop () =
  let s = S.lost_wakeup ~fixed:true in
  let total = ref 0 in
  let _, points, _ = Soak.run_one ~mk:s.S.make [] in
  List.iter
    (fun seed ->
      let plan =
        Plan.random ~seed ~points ~budget:4
          { Plan.no_kinds with spurious = true }
      in
      let outcome, _, injected = Soak.run_one ~mk:s.S.make plan in
      total := !total + injected;
      match outcome with
      | None -> ()
      | Some k ->
          Alcotest.failf "fixed lost-wakeup failed under seed %d: %s" seed
            (E.failure_kind_to_string k))
    [ 1; 2; 3; 4; 5 ];
  check bool "some wakeups actually injected" true (!total > 0)

let test_soak_robust_suite_clean () =
  let config =
    { Soak.default_config with seeds = [ 1; 2 ]; budget = 4 }
  in
  let r = Soak.soak ~config Soak.default_suite in
  check int "no failures" 0 (List.length r.Soak.r_failures);
  check bool "faults were injected" true (r.Soak.r_injected > 0);
  let j = Soak.json_of_report r in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check bool "json says clean" true (contains j "\"failures\": []")

(* ------------------------------------------------------------------ *)
(* The acceptance criterion: the seeded lost wakeup is found, shrunk,  *)
(* and replayed from its golden .fault file                            *)
(* ------------------------------------------------------------------ *)

let test_soak_finds_seeded_lost_wakeup () =
  let s = S.lost_wakeup_no_loop in
  let mk = s.S.make in
  let base, points, _ = Soak.run_one ~mk [] in
  check bool "clean run passes" true (base = None);
  let rec hunt seed =
    if seed > 20 then Alcotest.fail "no failing plan in 20 seeds"
    else
      let plan =
        Plan.random ~seed ~points ~budget:4
          { Plan.no_kinds with spurious = true }
      in
      match Soak.run_one ~mk plan with
      | Some _, _, _ -> plan
      | None, _, _ -> hunt (seed + 1)
  in
  let plan = hunt 1 in
  let shrunk, kind = Soak.shrink ~mk plan in
  check int "shrinks to a single injection" 1 (Plan.length shrunk);
  (match kind with
  | E.Bad_exit 1 -> ()
  | k ->
      Alcotest.failf "expected exit 1 (lost wakeup), got %s"
        (E.failure_kind_to_string k));
  (* the minimal plan is a spurious wakeup *)
  match shrunk with
  | [ { Plan.act = Plan.Spurious_wakeup _; _ } ] -> ()
  | _ -> Alcotest.fail "minimal plan is not a spurious wakeup"

let test_golden_fault_replays () =
  let text =
    In_channel.with_open_text "golden/no_predicate_loop.fault"
      In_channel.input_all
  in
  match Plan.of_string text with
  | Error e -> Alcotest.fail e
  | Ok plan -> (
      check bool "golden plan is minimal" true (Plan.length plan = 1);
      match Soak.run_one ~mk:S.lost_wakeup_no_loop.S.make plan with
      | Some (E.Bad_exit 1), _, injected ->
          check int "exactly one fault injected" 1 injected
      | Some k, _, _ ->
          Alcotest.failf "golden replay: expected exit 1, got %s"
            (E.failure_kind_to_string k)
      | None, _, _ ->
          Alcotest.fail
            "golden .fault file is stale: replay no longer fails \
             (regenerate with fault_demo --golden test/golden)")

(* ------------------------------------------------------------------ *)
(* EINTR from an injected trap fault                                   *)
(* ------------------------------------------------------------------ *)

let test_injected_eintr () =
  let got = ref None in
  let mk () =
    Pthread.make_proc (fun proc ->
        (* pass fault point 0 so the injector can arm the read *)
        Pthread.busy proc ~ns:1_000;
        let s1 = Flat.read proc ~latency_ns:1_000 in
        let e1 = (Engine.current proc).Types.errno in
        let s2 = Flat.read proc ~latency_ns:1_000 in
        got := Some (s1, e1, s2);
        0)
  in
  let plan = [ { Plan.at = 0; act = Plan.Trap_fault ("read", Errno.EINTR) } ] in
  let outcome, _, injected = Soak.run_one ~mk plan in
  check bool "process exits cleanly" true (outcome = None);
  check int "one trap fault fired" 1 injected;
  match !got with
  | Some (s1, e1, s2) ->
      check int "first read returns EINTR" Flat.eintr s1;
      check int "thread errno set" (Errno.to_int Errno.EINTR) e1;
      check int "second read succeeds (one-shot arming)" Flat.ok s2
  | None -> Alcotest.fail "program did not record its reads"

(* ------------------------------------------------------------------ *)
(* Satellite 3: timed-wait semantics against the virtual clock         *)
(* ------------------------------------------------------------------ *)

let test_wait_until_past_deadline () =
  ignore
    (run_main (fun proc ->
         let m = Mutex.create proc () in
         let c = Cond.create proc () in
         Mutex.lock proc m;
         (match Cond.wait_until proc c m ~deadline_ns:0 with
         | Cond.Timed_out -> ()
         | _ -> Alcotest.fail "past deadline must time out");
         (* the mutex was released and reacquired: we still own it *)
         Mutex.unlock proc m;
         0));
  ()

let test_clock_jump_times_out_flat_wait () =
  ignore
    (run_main (fun proc ->
         let _, m = Flat.mutex_init proc () in
         let _, c = Flat.cond_init proc () in
         let res = ref (-1) in
         (* higher priority: parks in the timed wait before main moves on *)
         let t =
           Pthread.create proc
             ~attr:(Attr.with_prio (Types.default_prio + 1) Attr.default)
             (fun () ->
               ignore (Flat.mutex_lock proc m);
               let deadline = Pthread.now proc + 1_000_000 in
               res := Flat.cond_timedwait proc c m ~deadline_ns:deadline;
               ignore (Flat.mutex_unlock proc m);
               0)
         in
         (* no signal ever comes; jump the clock past the deadline *)
         Engine.inject_clock_jump proc ~ns:5_000_000;
         (match Pthread.join proc t with
         | Types.Exited 0 -> ()
         | st -> Alcotest.failf "consumer: %a" Types.pp_exit_status st);
         check int "ETIMEDOUT" Flat.etimedout !res;
         0));
  ()

let test_wait_for_is_relative () =
  ignore
    (run_main (fun proc ->
         let m = Mutex.create proc () in
         let c = Cond.create proc () in
         let t0 = Pthread.now proc in
         Mutex.lock proc m;
         (match Cond.wait_for proc c m ~timeout_ns:100_000 with
         | Cond.Timed_out -> ()
         | _ -> Alcotest.fail "unsignaled wait_for must time out");
         Mutex.unlock proc m;
         check bool "waited at least the timeout" true
           (Pthread.now proc - t0 >= 100_000);
         0));
  ()

(* ------------------------------------------------------------------ *)
(* Injected cancellation: Table 1 discipline under fire                *)
(* ------------------------------------------------------------------ *)

(* Canceling a thread parked in Cond.wait without a cleanup handler leaks
   the reacquired mutex — the soak finds the paper's Table 1 pitfall. *)
let test_injected_cancel_finds_mutex_leak () =
  let s = S.lost_wakeup ~fixed:true in
  let mk = s.S.make in
  let _, points, _ = Soak.run_one ~mk [] in
  let rec hunt seed =
    if seed > 30 then None
    else
      let plan =
        Plan.random ~seed ~points ~budget:4
          { Plan.no_kinds with cancels = true }
      in
      match Soak.run_one ~mk plan with
      | Some _, _, _ -> Some plan
      | None, _, _ -> hunt (seed + 1)
  in
  match hunt 1 with
  | None -> Alcotest.fail "no injected cancellation bit within 30 seeds"
  | Some plan ->
      let shrunk, kind = Soak.shrink ~mk plan in
      check bool "shrunk to something" true (Plan.length shrunk >= 1);
      let ks = E.failure_kind_to_string kind in
      check bool ("failure is structural: " ^ ks) true
        (match kind with
        | E.Invariant_violated _ | E.Deadlocked _ | E.Bad_exit _ -> true
        | _ -> false)

(* The Table 1 state-cycling scenario holds no resources, so even the
   cancellation-enabled kinds must leave every run clean. *)
let test_cancel_states_robust () =
  let s = S.cancel_states in
  List.iter
    (fun seed ->
      let _, points, _ = Soak.run_one ~mk:s.S.make [] in
      let plan = Plan.random ~seed ~points ~budget:6 Plan.all_kinds in
      match Soak.run_one ~mk:s.S.make plan with
      | None, _, _ -> ()
      | Some k, _, _ ->
          Alcotest.failf "cancel-states failed under seed %d: %s" seed
            (E.failure_kind_to_string k))
    [ 1; 2; 3; 4; 5 ]

(* ------------------------------------------------------------------ *)
(* Stats plumbing                                                      *)
(* ------------------------------------------------------------------ *)

let test_faults_surface_in_stats () =
  let stats =
    run_stats (fun proc ->
        Engine.inject_clock_jump proc ~ns:1_000_000;
        Engine.inject_clock_jump proc ~ns:1_000_000;
        0)
  in
  check int "faults_injected" 2 stats.Engine.faults_injected

let suite =
  [
    ( "fault",
      [
        tc "errno round-trips" test_errno_roundtrip;
        tc "flat statuses are errnos on the wire" test_flat_constants_are_errnos;
        tc "misuse raises structured Error" test_structured_errors;
        tc "plan serialization round-trips" test_plan_roundtrip;
        tc "plan generation is seed-deterministic" test_plan_random_deterministic;
        tc "predicate loop absorbs spurious wakeups"
          test_spurious_absorbed_by_predicate_loop;
        tc "robust suite soaks clean" test_soak_robust_suite_clean;
        tc "soak finds the seeded lost wakeup" test_soak_finds_seeded_lost_wakeup;
        tc "golden .fault counterexample replays" test_golden_fault_replays;
        tc "injected trap fault surfaces as EINTR" test_injected_eintr;
        tc "wait_until with past deadline times out" test_wait_until_past_deadline;
        tc "clock jump times out a flat timed wait"
          test_clock_jump_times_out_flat_wait;
        tc "wait_for is relative to the call" test_wait_for_is_relative;
        tc "injected cancel exposes the Table 1 leak"
          test_injected_cancel_finds_mutex_leak;
        tc "state-cycling worker survives all kinds" test_cancel_states_robust;
        tc "injections surface in engine stats" test_faults_surface_in_stats;
      ] );
  ]
