let () =
  Alcotest.run "pthreads"
    (Test_vm.suite @ Test_sigset.suite @ Test_unix_kernel.suite
   @ Test_heap_process.suite @ Test_ready_queue.suite @ Test_thread.suite
   @ Test_mutex.suite @ Test_cond.suite @ Test_signals.suite
   @ Test_cancel.suite @ Test_cleanup_tsd_jmp.suite @ Test_sched.suite
   @ Test_protocols.suite @ Test_perverted.suite @ Test_semaphore.suite
   @ Test_tasking.suite @ Test_engine.suite @ Test_sync_extras.suite
   @ Test_libc_r.suite @ Test_tools.suite @ Test_suspend.suite @ Test_edge.suite @ Test_flat.suite @ Test_sched_policy.suite @ Test_machine.suite @ Test_process_control.suite @ Test_interplay.suite @ Test_trace.suite @ Test_io.suite @ Test_machine_fuzz.suite @ Test_conformance.suite @ Test_metrics.suite @ Test_golden.suite @ Test_explore.suite @ Test_sample.suite @ Test_soak.suite @ Test_fault.suite
   @ Test_trace_stats.suite @ Test_obs.suite @ Test_fuzz.suite @ Test_timer_wheel.suite
   @ Test_sanitize.suite @ Test_backend.suite @ Test_qlock.suite
   @ Test_parallel.suite)
