(* Edge cases and error conditions across the API surface. *)

open Tu
open Pthreads

let test_timed_wait_past_deadline () =
  ignore
    (run_main (fun proc ->
         let m = Mutex.create proc () in
         let c = Cond.create proc () in
         Mutex.lock proc m;
         let r = Cond.timed_wait proc c m ~deadline_ns:(Pthread.now proc - 1) in
         check bool "immediate timeout" true (r = Cond.Timed_out);
         Mutex.unlock proc m;
         0));
  ()

let test_zero_delay_and_busy () =
  ignore
    (run_main (fun proc ->
         Pthread.delay proc ~ns:0;
         Pthread.busy proc ~ns:0;
         0));
  ()

let test_mask_cannot_block_sigkill () =
  ignore
    (run_main (fun proc ->
         ignore (Signal_api.set_mask proc `Set Sigset.full);
         check bool "SIGKILL stays unmasked" false
           (Sigset.mem (Signal_api.mask proc) Sigset.sigkill);
         0));
  ()

let test_handler_exception_fails_thread () =
  ignore
    (run_main (fun proc ->
         Signal_api.set_action proc Sigset.sigusr1
           (Types.Sig_handler
              {
                h_mask = Sigset.empty;
                h_fn = (fun ~signo:_ ~code:_ -> failwith "handler bug");
              });
         let t =
           Pthread.create proc
             ~attr:(Attr.with_prio 3 Attr.default)
             (fun () ->
               Pthread.busy proc ~ns:100_000;
               0)
         in
         Signal_api.kill proc t Sigset.sigusr1;
         (match Pthread.join proc t with
         | Types.Failed _ -> ()
         | st ->
             Alcotest.failf "expected failure from handler, got %a"
               Types.pp_exit_status st);
         0));
  ()

let test_kill_invalid_signo () =
  ignore
    (run_main (fun proc ->
         (try
            Signal_api.kill proc (Pthread.self proc) 0;
            Alcotest.fail "signo 0 must raise"
          with Invalid_argument _ -> ());
         (try
            Signal_api.kill proc (Pthread.self proc) 99;
            Alcotest.fail "signo 99 must raise"
          with Invalid_argument _ -> ());
         0));
  ()

let test_attr_validation () =
  (try
     ignore (Attr.with_prio 99 Attr.default);
     Alcotest.fail "prio out of range"
   with Invalid_argument _ -> ());
  (try
     ignore (Attr.with_stack 0 Attr.default);
     Alcotest.fail "zero stack"
   with Invalid_argument _ -> ());
  let a =
    Attr.with_name "x" (Attr.with_stack 4096 (Attr.with_detached true Attr.default))
  in
  check bool "builders compose" true
    (a.Attr.detached && a.Attr.stack_bytes = 4096 && a.Attr.name = Some "x")

let test_get_priority_unknown () =
  ignore
    (run_main (fun proc ->
         (try
            ignore (Pthread.get_priority proc 999);
            Alcotest.fail "must raise"
          with Types.Error (Errno.ESRCH, _) -> ());
         0));
  ()

let test_set_priority_same_value () =
  ignore
    (run_main (fun proc ->
         Pthread.set_priority proc (Pthread.self proc) Types.default_prio;
         check int "unchanged" Types.default_prio
           (Pthread.get_priority proc (Pthread.self proc));
         0));
  ()

let test_sigwait_multiple_pended () =
  ignore
    (run_main (fun proc ->
         let both = Sigset.of_list [ Sigset.sigusr1; Sigset.sigusr2 ] in
         ignore (Signal_api.set_mask proc `Block both);
         Signal_api.kill proc (Pthread.self proc) Sigset.sigusr1;
         Signal_api.kill proc (Pthread.self proc) Sigset.sigusr2;
         let first = Signal_api.sigwait proc both in
         check bool "one of the two" true
           (first = Sigset.sigusr1 || first = Sigset.sigusr2);
         let second = Signal_api.sigwait proc both in
         check bool "the other is preserved" true
           (second <> first
           && (second = Sigset.sigusr1 || second = Sigset.sigusr2));
         0));
  ()

let test_deadlock_message_names_threads () =
  match
    Pthread.run (fun proc ->
        let m = Mutex.create proc () in
        Mutex.lock proc m;
        let t =
          Pthread.create_unit proc
            ~attr:(Attr.with_name "stuck-worker" Attr.default)
            (fun () ->
              Mutex.lock proc m;
              Mutex.unlock proc m)
        in
        (* main exits while holding m; worker waits forever... except main
           joining it deadlocks first *)
        ignore (Pthread.join proc t);
        0)
  with
  | exception Types.Process_stopped (Types.Deadlock msg) ->
      let contains sub =
        let n = String.length msg and m = String.length sub in
        let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
        go 0
      in
      check bool "message names the stuck thread" true (contains "stuck-worker")
  | _ -> Alcotest.fail "expected deadlock"

let test_lost_signal_counted () =
  let stats =
    run_stats (fun proc ->
        Signal_api.set_action proc Sigset.sigusr1 Types.Sig_ignore;
        (* two posts, no checkpoint in between: BSD drops the second *)
        Engine.post_external proc Sigset.sigusr1 ();
        Engine.post_external proc Sigset.sigusr1 ();
        Pthread.checkpoint proc;
        0)
  in
  check int "one lost" 1 stats.Engine.signals_lost

let test_detached_thread_not_joinable_after_exit () =
  ignore
    (run_main (fun proc ->
         let t =
           Pthread.create proc
             ~attr:(Attr.with_detached true Attr.default)
             (fun () -> 0)
         in
         Pthread.yield proc;
         (* reclaimed at termination: the tid is gone *)
         check bool "no state" true (Pthread.state_of proc t = None);
         0));
  ()

let test_many_threads () =
  ignore
    (run_main (fun proc ->
         let n = 100 in
         let counter = ref 0 in
         let ts =
           List.init n (fun _ -> Pthread.create_unit proc (fun () -> incr counter))
         in
         List.iter (fun t -> ignore (Pthread.join proc t)) ts;
         check int "all ran" n !counter;
         0));
  ()

let test_deep_mutex_nesting () =
  ignore
    (run_main (fun proc ->
         let ms = List.init 20 (fun i -> Mutex.create proc ~name:(string_of_int i) ()) in
         List.iter (fun m -> Mutex.lock proc m) ms;
         List.iter (fun m -> Mutex.unlock proc m) (List.rev ms);
         0));
  ()

let test_cond_broadcast_priority_order () =
  ignore
    (run_main (fun proc ->
         let m = Mutex.create proc () in
         let c = Cond.create proc () in
         let order = ref [] in
         let waiter name prio =
           Pthread.create_unit proc
             ~attr:(Attr.with_prio prio (Attr.with_name name Attr.default))
             (fun () ->
               Mutex.lock proc m;
               ignore (Cond.wait proc c m);
               order := name :: !order;
               Mutex.unlock proc m)
         in
         let ts = [ waiter "lo" 2; waiter "hi" 25; waiter "mid" 10 ] in
         Pthread.delay proc ~ns:100_000;
         Cond.broadcast proc c;
         List.iter (fun t -> ignore (Pthread.join proc t)) ts;
         check (Alcotest.list string) "released in priority order"
           [ "hi"; "mid"; "lo" ] (List.rev !order);
         0));
  ()

let test_gantt_empty_trace () =
  let t = Vm.Trace.create () in
  check string "placeholder" "(empty trace)" (Vm.Trace.gantt t ~bucket_ns:1000)

let test_two_procs_isolated () =
  (* two simulated processes do not share anything *)
  let r1 =
    run_main (fun proc ->
        let m = Mutex.create proc () in
        Mutex.lock proc m;
        let r2 =
          run_main (fun proc2 ->
              (* a different process: its own clock, threads, mutexes *)
              check int "fresh tid space" 0 (Pthread.self proc2);
              7)
        in
        Mutex.unlock proc m;
        r2)
  in
  check int "nested run result" 7 r1

let test_stats_thread_created_counter () =
  let stats =
    run_stats (fun proc ->
        let ts = List.init 5 (fun _ -> Pthread.create proc (fun () -> 0)) in
        List.iter (fun t -> ignore (Pthread.join proc t)) ts;
        0)
  in
  check int "created counted" 5 stats.Engine.threads_created

let suite =
  [
    ( "edge",
      [
        tc "timed wait past deadline" test_timed_wait_past_deadline;
        tc "zero delay/busy" test_zero_delay_and_busy;
        tc "SIGKILL unmaskable" test_mask_cannot_block_sigkill;
        tc "handler exception fails thread" test_handler_exception_fails_thread;
        tc "invalid signo" test_kill_invalid_signo;
        tc "attr validation" test_attr_validation;
        tc "get_priority unknown" test_get_priority_unknown;
        tc "set_priority same" test_set_priority_same_value;
        tc "sigwait multiple pended" test_sigwait_multiple_pended;
        tc "deadlock message" test_deadlock_message_names_threads;
        tc "lost signal counted" test_lost_signal_counted;
        tc "detached reclaimed" test_detached_thread_not_joinable_after_exit;
        tc "100 threads" test_many_threads;
        tc "deep nesting" test_deep_mutex_nesting;
        tc "broadcast priority order" test_cond_broadcast_priority_order;
        tc "gantt empty" test_gantt_empty_trace;
        tc "two procs isolated" test_two_procs_isolated;
        tc "created counter" test_stats_thread_created_counter;
      ] );
  ]
