(* Parallel mode (lib/pthreads/shard.ml): the domains=1 path must be
   bit-identical to the plain single-domain engine, and under real
   domains the pool must lose nothing — every task starts exactly once
   (stolen or not), every join and await completes, counters and sums
   come out exact, and failures propagate to the caller.  Alongside
   test_qlock this is the only suite that spawns host domains. *)

open Tu
open Pthreads

(* -------------------------------------------------------------- *)
(* domains=1 is the single-domain engine, bit for bit              *)
(* -------------------------------------------------------------- *)

(* A deliberately messy program: priorities, a condition variable,
   timers, a signal and nested joins — enough machinery that any
   divergence between the two entry points would scramble the trace. *)
let messy proc =
  let m = Mutex.create proc () in
  let cv = Cond.create proc () in
  let items = ref [] in
  let consumer =
    Pthread.create proc (fun () ->
        Mutex.lock proc m;
        while List.length !items < 3 do
          ignore (Cond.wait proc cv m)
        done;
        let n = List.fold_left ( + ) 0 !items in
        Mutex.unlock proc m;
        n)
  in
  let producers =
    List.init 3 (fun i ->
        Pthread.create_unit proc
          ~attr:(Attr.with_prio (10 + i) Attr.default)
          (fun () ->
            Pthread.delay proc ~ns:(100_000 * (i + 1));
            Mutex.lock proc m;
            items := (i + 1) :: !items;
            Cond.signal proc cv;
            Mutex.unlock proc m))
  in
  List.iter (fun t -> ignore (Pthread.join proc t)) producers;
  match Pthread.join proc consumer with
  | Types.Exited n -> n
  | _ -> -1

let run_traced ~domains () =
  let events = ref [] in
  let status, stats =
    Pthreads.run ?domains ~seed:11 ~trace:true (fun proc ->
        let n = messy proc in
        events := Pthread.trace_events proc;
        n)
  in
  (status, stats, !events)

let test_domains1_bit_identical () =
  let s0, st0, ev0 = run_traced ~domains:None () in
  let s1, st1, ev1 = run_traced ~domains:(Some 1) () in
  check exit_status "status" (Option.get s0) (Option.get s1);
  if st0 <> st1 then Alcotest.fail "stats diverge between run and ~domains:1";
  check int "trace length" (List.length ev0) (List.length ev1);
  if ev0 <> ev1 then Alcotest.fail "trace events diverge";
  (* and the degenerate Shard API answers single-domain values *)
  ignore
    (run_main (fun proc ->
         check int "shard_index" 0 (Shard.shard_index proc);
         check int "domain_count" 1 (Shard.domain_count proc);
         check int "steal_count" 0 (Shard.steal_count proc);
         0))

(* Shard.spawn/await in single-domain mode degenerate to local threads:
   same program, no pool, checker-compatible. *)
let test_single_domain_spawn_degenerates () =
  ignore
    (run_main (fun proc ->
         let hs =
           List.init 5 (fun i -> Shard.spawn proc (fun _ -> 10 * (i + 1)))
         in
         let sum =
           List.fold_left
             (fun acc h ->
               match Shard.await proc h with
               | Types.Exited v -> acc + v
               | _ -> Alcotest.fail "degenerate await failed")
             0 hs
         in
         check int "sum over local tasks" 150 sum;
         0))

(* -------------------------------------------------------------- *)
(* Facade argument validation                                      *)
(* -------------------------------------------------------------- *)

let test_run_rejections () =
  let expect_invalid label f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" label
  in
  expect_invalid "domains=0" (fun () ->
      Pthreads.run ~domains:0 (fun _ -> 0));
  expect_invalid "shared backend" (fun () ->
      Pthreads.run ~domains:2 ~backend:(Pthreads.vm_backend ()) (fun _ -> 0));
  expect_invalid "perverted" (fun () ->
      Pthreads.run ~domains:2 ~perverted:Types.Mutex_switch (fun _ -> 0));
  expect_invalid "negative home" (fun () ->
      ignore (Attr.with_home (-1) Attr.default);
      0)

(* -------------------------------------------------------------- *)
(* The stress catalogue under real domains                         *)
(* -------------------------------------------------------------- *)

(* Four task shapes, each a self-checking miniature of the scenario
   catalogue (mutex counting, condition-variable handoff, a nested
   create/join tree, semaphore rendezvous), each built only from
   shard-local threads on whatever engine runs the task.  A task
   returns its index iff its own assertions held. *)
let task_body i proc =
  match i mod 4 with
  | 0 ->
      (* three local threads hammer one mutex-guarded counter *)
      let m = Mutex.create proc () in
      let n = ref 0 in
      let ts =
        List.init 3 (fun _ ->
            Pthread.create_unit proc (fun () ->
                for _ = 1 to 100 do
                  Mutex.lock proc m;
                  incr n;
                  Mutex.unlock proc m;
                  Pthread.yield proc
                done))
      in
      List.iter (fun t -> ignore (Pthread.join proc t)) ts;
      if !n = 300 then i else -1
  | 1 ->
      (* predicate-loop producer/consumer: nothing lost, nothing extra *)
      let m = Mutex.create proc () in
      let cv = Cond.create proc () in
      let q = Queue.create () in
      let got = ref 0 in
      let consumer =
        Pthread.create_unit proc (fun () ->
            for _ = 1 to 50 do
              Mutex.lock proc m;
              while Queue.is_empty q do
                ignore (Cond.wait proc cv m)
              done;
              got := !got + Queue.pop q;
              Mutex.unlock proc m
            done)
      in
      let producer =
        Pthread.create_unit proc (fun () ->
            for k = 1 to 50 do
              Mutex.lock proc m;
              Queue.push k q;
              Cond.signal proc cv;
              Mutex.unlock proc m;
              if k mod 7 = 0 then Pthread.delay proc ~ns:50_000
            done)
      in
      ignore (Pthread.join proc producer);
      ignore (Pthread.join proc consumer);
      if !got = 50 * 51 / 2 then i else -1
  | 2 ->
      (* a two-level create/join tree with timers on the leaves *)
      let leaves parent_i =
        List.init 3 (fun j ->
            Pthread.create proc (fun () ->
                Pthread.delay proc ~ns:(10_000 * (j + 1));
                (parent_i * 10) + j))
      in
      let mids =
        List.init 2 (fun k ->
            Pthread.create proc (fun () ->
                List.fold_left
                  (fun acc t ->
                    match Pthread.join proc t with
                    | Types.Exited v -> acc + v
                    | _ -> -1000)
                  0 (leaves k)))
      in
      let total =
        List.fold_left
          (fun acc t ->
            match Pthread.join proc t with
            | Types.Exited v -> acc + v
            | _ -> -1000)
          0 mids
      in
      (* leaves: 0+1+2 and 10+11+12 *)
      if total = 36 then i else -1
  | _ ->
      (* semaphore ping-pong rendezvous, exact turn count *)
      let ping = Psem.Semaphore.create proc 0 in
      let pong = Psem.Semaphore.create proc 0 in
      let turns = ref 0 in
      let t =
        Pthread.create_unit proc (fun () ->
            for _ = 1 to 20 do
              Psem.Semaphore.wait proc ping;
              incr turns;
              Psem.Semaphore.post proc pong
            done)
      in
      for _ = 1 to 20 do
        Psem.Semaphore.post proc ping;
        Psem.Semaphore.wait proc pong
      done;
      ignore (Pthread.join proc t);
      if !turns = 20 then i else -1

let stress ~domains () =
  let tasks = 24 in
  let started = Atomic.make 0 in
  let o =
    Shard.run_parallel ~domains (fun proc ->
        let hs =
          List.init tasks (fun i ->
              Shard.spawn proc (fun proc' ->
                  Atomic.incr started;
                  task_body i proc'))
        in
        let sum =
          List.fold_left
            (fun acc h ->
              match Shard.await proc h with
              | Types.Exited v when v >= 0 -> acc + v
              | Types.Exited v ->
                  Alcotest.failf "a task's internal assertions failed (%d)" v
              | st ->
                  Alcotest.failf "task did not exit: %a" Types.pp_exit_status
                    st)
            0 hs
        in
        check int "awaited sum exact" (tasks * (tasks - 1) / 2) sum;
        0)
  in
  check exit_status "root exit" (Types.Exited 0) o.Shard.status;
  check int "every task body ran exactly once" tasks (Atomic.get started);
  (* per-shard task ledger: the 24 tasks plus the root, wherever each
     one landed (steals move tasks between shards, never duplicate or
     drop them) *)
  check int "task ledger exact" (tasks + 1)
    (Array.fold_left ( + ) 0 o.Shard.tasks);
  check int "a shard per domain" domains (Array.length o.Shard.shard_stats);
  if o.Shard.stats.threads_created < tasks then
    Alcotest.fail "summed stats lost threads"

let test_stress_2 () = stress ~domains:2 ()
let test_stress_4 () = stress ~domains:4 ()

(* -------------------------------------------------------------- *)
(* Cross-shard edges: explicit homes, await chains, failure        *)
(* -------------------------------------------------------------- *)

let test_homes_and_cross_shard_await () =
  let domains = 3 in
  let o =
    Shard.run_parallel ~domains (fun proc ->
        (* explicit home on the far shard; oversized homes wrap *)
        let a =
          Shard.spawn proc ~home:(domains - 1) (fun proc' ->
              let i = Shard.shard_index proc' in
              if i >= 0 && i < domains then begin
                Pthread.delay proc' ~ns:200_000;
                41
              end
              else -1)
        in
        let b =
          Shard.spawn proc
            ~attr:(Attr.with_home (domains + 1) Attr.default)
            (fun proc' ->
              (* awaits a handle owned by another shard *)
              match Shard.await proc' a with
              | Types.Exited v -> v + 1
              | _ -> -1)
        in
        (match Shard.await proc b with
        | Types.Exited 42 -> ()
        | st ->
            Alcotest.failf "cross-shard await chain: %a" Types.pp_exit_status
              st);
        (match Shard.poll a with
        | Some (Types.Exited 41) -> ()
        | _ -> Alcotest.fail "poll after completion");
        0)
  in
  check exit_status "root exit" (Types.Exited 0) o.Shard.status

let test_task_failure_propagates () =
  let o =
    Shard.run_parallel ~domains:2 (fun proc ->
        let h =
          Shard.spawn proc ~home:1 (fun _ -> failwith "task exploded")
        in
        match Shard.await proc h with
        | Types.Failed _ -> 0
        | st ->
            Alcotest.failf "expected Failed, got %a" Types.pp_exit_status st)
  in
  check exit_status "root exit" (Types.Exited 0) o.Shard.status

(* -------------------------------------------------------------- *)
(* post_all: a process-level signal reaches every shard            *)
(* -------------------------------------------------------------- *)

let test_post_all_reaches_every_shard () =
  let domains = 3 in
  let installed = Atomic.make 0 in
  let hits = Array.init domains (fun _ -> Atomic.make false) in
  let o =
    Shard.run_parallel ~domains (fun proc ->
        (* One watcher homed per shard, watching SIGCHLD — whose default
           action is ignore, so a shard left watcher-less by a steal
           absorbs the post harmlessly instead of dying to a default
           action.  Delivery flags are per *hosting* engine: if a steal
           lands two watchers on one engine the second's [set_action]
           replaces the first's handler, but both poll the same flag. *)
        let watchers =
          List.init domains (fun i ->
              Shard.spawn proc ~home:i (fun proc' ->
                  let idx = Shard.shard_index proc' in
                  Signal_api.set_action proc' Vm.Sigset.sigchld
                    (Types.Sig_handler
                       {
                         h_mask = Vm.Sigset.empty;
                         h_fn =
                           (fun ~signo:_ ~code:_ ->
                             Atomic.set hits.(idx) true);
                       });
                  Atomic.incr installed;
                  let spins = ref 0 in
                  while (not (Atomic.get hits.(idx))) && !spins < 500_000 do
                    incr spins;
                    Pthread.yield proc'
                  done;
                  if Atomic.get hits.(idx) then 0 else 1))
        in
        (* don't start posting before every watcher is listening: the
           posts are not queued (BSD one-pending-slot semantics), and an
           ignored early post is pure lost time for the yield loops *)
        while Atomic.get installed < domains do
          Pthread.delay proc ~ns:50_000
        done;
        (* keep posting until every watcher saw it: signals are posted
           per-process per-shard, and a watcher may not have installed
           its handler when an early post lands (BSD signals do not
           queue) *)
        let rec drive remaining =
          match List.filter (fun h -> Shard.poll h = None) remaining with
          | [] -> ()
          | left ->
              Shard.post_all proc Vm.Sigset.sigchld;
              Pthread.delay proc ~ns:100_000;
              drive left
        in
        drive watchers;
        List.iter
          (fun h ->
            match Shard.await proc h with
            | Types.Exited 0 -> ()
            | _ -> Alcotest.fail "a watcher never saw the signal")
          watchers;
        0)
  in
  check exit_status "root exit" (Types.Exited 0) o.Shard.status

let suite =
  [
    ( "parallel",
      [
        tc "domains=1 is bit-identical" test_domains1_bit_identical;
        tc "spawn/await degenerate locally" test_single_domain_spawn_degenerates;
        tc "facade rejects bad arguments" test_run_rejections;
        tc "stress catalogue, 2 shards" test_stress_2;
        tc "stress catalogue, 4 shards" test_stress_4;
        tc "homes and cross-shard await" test_homes_and_cross_shard_await;
        tc "task failure propagates" test_task_failure_propagates;
        tc "post_all reaches every shard" test_post_all_reaches_every_shard;
      ] );
  ]
