(* Mutexes: fast paths, contention, ownership transfer, error cases. *)

open Tu
open Pthreads

let test_lock_unlock () =
  ignore
    (run_main (fun proc ->
         let m = Mutex.create proc () in
         check bool "unlocked" false (Mutex.is_locked m);
         Mutex.lock proc m;
         check bool "locked" true (Mutex.is_locked m);
         check (Alcotest.option int) "owner" (Some 0) (Mutex.owner_tid m);
         Mutex.unlock proc m;
         check bool "unlocked again" false (Mutex.is_locked m);
         check (Alcotest.option int) "no owner" None (Mutex.owner_tid m);
         0));
  ()

let test_relock_rejected () =
  ignore
    (run_main (fun proc ->
         let m = Mutex.create proc () in
         Mutex.lock proc m;
         (try
            Mutex.lock proc m;
            Alcotest.fail "relock must raise"
          with Types.Error (Errno.EDEADLK, _) -> ());
         Mutex.unlock proc m;
         0));
  ()

let test_unlock_not_owner_rejected () =
  ignore
    (run_main (fun proc ->
         let m = Mutex.create proc () in
         (try
            Mutex.unlock proc m;
            Alcotest.fail "unlock of unlocked must raise"
          with Types.Error (Errno.EPERM, _) -> ());
         Mutex.lock proc m;
         let t =
           Pthread.create proc (fun () ->
               try
                 Mutex.unlock proc m;
                 1
               with Types.Error (Errno.EPERM, _) -> 0)
         in
         (match Pthread.join proc t with
         | Types.Exited 0 -> ()
         | st -> Alcotest.failf "got %a" Types.pp_exit_status st);
         Mutex.unlock proc m;
         0));
  ()

let test_try_lock () =
  ignore
    (run_main (fun proc ->
         let m = Mutex.create proc () in
         check bool "try succeeds" true (Mutex.try_lock proc m);
         let t = Pthread.create proc (fun () ->
             if Mutex.try_lock proc m then 1 else 0)
         in
         (match Pthread.join proc t with
         | Types.Exited 0 -> ()
         | _ -> Alcotest.fail "try_lock on held mutex must fail");
         Mutex.unlock proc m;
         0));
  ()

let test_contention_blocks_and_transfers () =
  ignore
    (run_main (fun proc ->
         let m = Mutex.create proc () in
         let inside = ref 0 and peak = ref 0 in
         let body () =
           Mutex.lock proc m;
           incr inside;
           peak := max !peak !inside;
           Pthread.busy proc ~ns:5_000;
           decr inside;
           Mutex.unlock proc m
         in
         Mutex.lock proc m;
         let ts = List.init 4 (fun _ -> Pthread.create_unit proc body) in
         (* let every thread block on the held mutex *)
         Pthread.delay proc ~ns:100_000;
         check int "four blocked" 4 (Mutex.waiter_count m);
         Mutex.unlock proc m;
         List.iter (fun t -> ignore (Pthread.join proc t)) ts;
         check int "mutual exclusion" 1 !peak;
         check bool "contention recorded" true (Mutex.contention_count m > 0);
         check int "lock count" 5 (Mutex.lock_count m);
         0));
  ()

let test_wakeup_priority_order () =
  ignore
    (run_main (fun proc ->
         let m = Mutex.create proc () in
         let order = ref [] in
         Mutex.lock proc m;
         let waiter name prio =
           Pthread.create_unit proc
             ~attr:(Attr.with_prio prio (Attr.with_name name Attr.default))
             (fun () ->
               Mutex.lock proc m;
               order := name :: !order;
               Mutex.unlock proc m)
         in
         let ts =
           [ waiter "lo" 3; waiter "hi" 25; waiter "mid" 10 ]
         in
         Pthread.delay proc ~ns:100_000 (* let them all block *);
         check int "three waiters" 3 (Mutex.waiter_count m);
         Mutex.unlock proc m;
         List.iter (fun t -> ignore (Pthread.join proc t)) ts;
         check (Alcotest.list string) "highest priority first"
           [ "hi"; "mid"; "lo" ] (List.rev !order);
         0));
  ()

let test_fifo_within_priority () =
  ignore
    (run_main (fun proc ->
         let m = Mutex.create proc () in
         let order = ref [] in
         Mutex.lock proc m;
         let waiter name =
           Pthread.create_unit proc
             ~attr:(Attr.with_name name Attr.default)
             (fun () ->
               Mutex.lock proc m;
               order := name :: !order;
               Mutex.unlock proc m)
         in
         let a = waiter "a" in
         Pthread.yield proc;
         let b = waiter "b" in
         Pthread.yield proc;
         let c = waiter "c" in
         Pthread.delay proc ~ns:100_000;
         Mutex.unlock proc m;
         List.iter (fun t -> ignore (Pthread.join proc t)) [ a; b; c ];
         check (Alcotest.list string) "FIFO within level" [ "a"; "b"; "c" ]
           (List.rev !order);
         0));
  ()

let test_fast_path_no_kernel_calls () =
  (* "Mutexes ... should consequently only be held for a short time ... it
     should be attempted to maximize the performance of mutex operations
     without contention" — the uncontended pair must not trap. *)
  ignore
    (run_main (fun proc ->
         let m = Mutex.create proc () in
         let s0 = (Pthread.stats proc).Engine.kernel_traps in
         for _ = 1 to 100 do
           Mutex.lock proc m;
           Mutex.unlock proc m
         done;
         let s1 = (Pthread.stats proc).Engine.kernel_traps in
         check int "no UNIX kernel calls on the fast path" s0 s1;
         0));
  ()

let test_many_mutexes () =
  ignore
    (run_main (fun proc ->
         let ms = List.init 50 (fun i -> Mutex.create proc ~name:(string_of_int i) ()) in
         List.iter (fun m -> Mutex.lock proc m) ms;
         List.iter (fun m -> check bool "held" true (Mutex.is_locked m)) ms;
         List.iter (fun m -> Mutex.unlock proc m) ms;
         0));
  ()

let test_handler_deferred_on_mutex_wait () =
  (* A mutex wait is not an interruption point: a handler directed at a
     blocked waiter runs only once the mutex is acquired. *)
  ignore
    (run_main (fun proc ->
         let m = Mutex.create proc () in
         let log = ref [] in
         Signal_api.set_action proc Sigset.sigusr1
           (Types.Sig_handler
              {
                h_mask = Sigset.empty;
                h_fn = (fun ~signo:_ ~code:_ -> log := `Handler :: !log);
              });
         Mutex.lock proc m;
         let t =
           Pthread.create_unit proc (fun () ->
               Mutex.lock proc m;
               log := `Locked :: !log;
               Mutex.unlock proc m)
         in
         Pthread.yield proc;
         Signal_api.kill proc t Sigset.sigusr1;
         Pthread.busy proc ~ns:10_000;
         check (Alcotest.list bool) "handler did not run while blocked" []
           (List.map (fun _ -> true) !log);
         Mutex.unlock proc m;
         ignore (Pthread.join proc t);
         (* handler runs right after acquisition, before the body's action *)
         check bool "handler ran on wake" true
           (match List.rev !log with `Handler :: `Locked :: _ -> true | _ -> false);
         0));
  ()

(* Property: mutual exclusion holds under randomized perverted scheduling
   for arbitrary thread counts and seeds. *)
let prop_mutual_exclusion =
  qcheck ~count:30 "mutual exclusion under random switch"
    QCheck2.Gen.(pair (int_range 2 6) (int_range 0 1000))
    (fun (n, seed) ->
      let peak = ref 0 in
      ignore
        (run_main ~perverted:Types.Random_switch ~seed (fun proc ->
             let m = Mutex.create proc () in
             let inside = ref 0 in
             let body () =
               for _ = 1 to 3 do
                 Mutex.lock proc m;
                 incr inside;
                 peak := max !peak !inside;
                 Pthread.busy proc ~ns:3_000;
                 decr inside;
                 Mutex.unlock proc m
               done
             in
             let ts = List.init n (fun _ -> Pthread.create_unit proc body) in
             List.iter (fun t -> ignore (Pthread.join proc t)) ts;
             0));
      !peak <= 1)

let suite =
  [
    ( "mutex",
      [
        tc "lock/unlock" test_lock_unlock;
        tc "relock rejected" test_relock_rejected;
        tc "unlock not owner rejected" test_unlock_not_owner_rejected;
        tc "try_lock" test_try_lock;
        tc "contention + transfer" test_contention_blocks_and_transfers;
        tc "wakeup priority order" test_wakeup_priority_order;
        tc "FIFO within priority" test_fifo_within_priority;
        tc "fast path: no kernel calls" test_fast_path_no_kernel_calls;
        tc "many mutexes" test_many_mutexes;
        tc "handler deferred on mutex wait" test_handler_deferred_on_mutex_wait;
        prop_mutual_exclusion;
      ] );
  ]
