(* Reader-writer locks and barriers (layered synchronization). *)

open Tu
open Pthreads
module Rwlock = Psem.Rwlock
module Barrier = Psem.Barrier

let test_rw_multiple_readers () =
  ignore
    (run_main (fun proc ->
         let l = Rwlock.create proc () in
         let peak = ref 0 in
         let reader () =
           Rwlock.read_lock proc l;
           peak := max !peak (Rwlock.readers l);
           Pthread.busy proc ~ns:20_000;
           Rwlock.read_unlock proc l
         in
         Rwlock.read_lock proc l;
         let ts = List.init 3 (fun _ -> Pthread.create_unit proc reader) in
         Pthread.delay proc ~ns:50_000;
         check bool "readers share" true (Rwlock.readers l >= 1);
         Rwlock.read_unlock proc l;
         List.iter (fun t -> ignore (Pthread.join proc t)) ts;
         0));
  ()

let test_rw_writer_excludes () =
  ignore
    (run_main (fun proc ->
         let l = Rwlock.create proc () in
         let in_cs = ref 0 and bad = ref false in
         let writer () =
           Rwlock.write_lock proc l;
           incr in_cs;
           if !in_cs > 1 then bad := true;
           Pthread.busy proc ~ns:10_000;
           decr in_cs;
           Rwlock.write_unlock proc l
         in
         let reader () =
           Rwlock.read_lock proc l;
           if !in_cs > 0 then bad := true;
           Rwlock.read_unlock proc l
         in
         let ts =
           List.init 3 (fun _ -> Pthread.create_unit proc writer)
           @ List.init 3 (fun _ -> Pthread.create_unit proc reader)
         in
         List.iter (fun t -> ignore (Pthread.join proc t)) ts;
         check bool "exclusion held" false !bad;
         0));
  ()

let test_rw_writer_preference () =
  (* once a writer waits, new readers must queue behind it *)
  ignore
    (run_main (fun proc ->
         let l = Rwlock.create proc () in
         let order = ref [] in
         Rwlock.read_lock proc l;
         let w =
           Pthread.create_unit proc (fun () ->
               Rwlock.write_lock proc l;
               order := "writer" :: !order;
               Rwlock.write_unlock proc l)
         in
         Pthread.delay proc ~ns:30_000;
         let r =
           Pthread.create_unit proc (fun () ->
               Rwlock.read_lock proc l;
               order := "late-reader" :: !order;
               Rwlock.read_unlock proc l)
         in
         Pthread.delay proc ~ns:30_000;
         check bool "late reader waits behind writer" true
           (not (Rwlock.try_read_lock proc l));
         Rwlock.read_unlock proc l;
         List.iter (fun t -> ignore (Pthread.join proc t)) [ w; r ];
         check (Alcotest.list string) "writer first" [ "writer"; "late-reader" ]
           (List.rev !order);
         0));
  ()

let test_rw_try_variants () =
  ignore
    (run_main (fun proc ->
         let l = Rwlock.create proc () in
         check bool "try read on free" true (Rwlock.try_read_lock proc l);
         check bool "try write blocked by reader" false
           (Rwlock.try_write_lock proc l);
         Rwlock.read_unlock proc l;
         check bool "try write on free" true (Rwlock.try_write_lock proc l);
         check bool "try read blocked by writer" false
           (Rwlock.try_read_lock proc l);
         Rwlock.write_unlock proc l;
         0));
  ()

let test_rw_errors () =
  ignore
    (run_main (fun proc ->
         let l = Rwlock.create proc () in
         (try
            Rwlock.read_unlock proc l;
            Alcotest.fail "read_unlock on free must raise"
          with Invalid_argument _ -> ());
         (try
            Rwlock.write_unlock proc l;
            Alcotest.fail "write_unlock by non-writer must raise"
          with Invalid_argument _ -> ());
         0));
  ()

let test_rw_with_helpers () =
  ignore
    (run_main (fun proc ->
         let l = Rwlock.create proc () in
         let v = Rwlock.with_read proc l (fun () -> 5) in
         check int "with_read result" 5 v;
         check int "released" 0 (Rwlock.readers l);
         let v = Rwlock.with_write proc l (fun () -> 7) in
         check int "with_write result" 7 v;
         check bool "released" true (Rwlock.writer_tid l = None);
         0));
  ()

let test_rw_under_perverted () =
  ignore
    (run_main ~perverted:Types.Random_switch ~seed:5 (fun proc ->
         let l = Rwlock.create proc () in
         let readers_in = ref 0 and writer_in = ref false and bad = ref false in
         let reader () =
           for _ = 1 to 3 do
             Rwlock.read_lock proc l;
             incr readers_in;
             if !writer_in then bad := true;
             Pthread.busy proc ~ns:3_000;
             decr readers_in;
             Rwlock.read_unlock proc l
           done
         in
         let writer () =
           for _ = 1 to 3 do
             Rwlock.write_lock proc l;
             writer_in := true;
             if !readers_in > 0 then bad := true;
             Pthread.busy proc ~ns:3_000;
             writer_in := false;
             Rwlock.write_unlock proc l
           done
         in
         let ts =
           List.init 3 (fun _ -> Pthread.create_unit proc reader)
           @ List.init 2 (fun _ -> Pthread.create_unit proc writer)
         in
         List.iter (fun t -> ignore (Pthread.join proc t)) ts;
         check bool "reader/writer exclusion under perversion" false !bad;
         0));
  ()

let test_barrier_releases_all () =
  ignore
    (run_main (fun proc ->
         let b = Barrier.create proc 4 in
         let through = ref 0 and serials = ref 0 in
         let party () =
           (match Barrier.wait proc b with
           | Barrier.Serial -> incr serials
           | Barrier.Waited -> ());
           incr through
         in
         let ts = List.init 3 (fun _ -> Pthread.create_unit proc party) in
         Pthread.delay proc ~ns:50_000;
         check int "none through before full" 0 !through;
         check int "three waiting" 3 (Barrier.waiting b);
         party ();
         List.iter (fun t -> ignore (Pthread.join proc t)) ts;
         check int "all through" 4 !through;
         check int "exactly one serial" 1 !serials;
         0));
  ()

let test_barrier_cyclic () =
  ignore
    (run_main (fun proc ->
         let b = Barrier.create proc 2 in
         let phases = ref [] in
         let t =
           Pthread.create_unit proc (fun () ->
               for i = 1 to 3 do
                 ignore (Barrier.wait proc b);
                 phases := ("t" ^ string_of_int i) :: !phases
               done)
         in
         for i = 1 to 3 do
           ignore (Barrier.wait proc b);
           phases := ("m" ^ string_of_int i) :: !phases
         done;
         ignore (Pthread.join proc t);
         (* both threads complete phase i before either starts i+1 *)
         let order = List.rev !phases in
         let phase_of s = int_of_string (String.sub s 1 1) in
         let rec monotone = function
           | a :: (b :: _ as rest) -> phase_of b >= phase_of a && monotone rest
           | _ -> true
         in
         check bool "phases in lockstep" true (monotone order);
         check int "six passages" 6 (List.length order);
         0));
  ()

(* A writer canceled while blocked inside [write_lock] must not leak its
   [waiting_writers] registration: read admission requires that count to
   be zero, so a leak starves every future reader.  Sweep a cancellation
   over every fault point of the run — wherever it lands (before the
   writer blocks, while it waits, after it acquired), the program must
   still terminate cleanly; a leak turns the final read_lock into a
   deadlock. *)
let test_rw_writer_cancel_no_leak () =
  let mk () =
    Pthread.make_proc (fun proc ->
        (* main holds the read lock across the sweep; a cancel that the
           modulo aims at main instead of the writer must pend, not strand
           the writer behind a dead reader *)
        ignore (Cancel.set_state proc Types.Cancel_disabled : Types.cancel_state);
        let l = Rwlock.create proc () in
        Rwlock.read_lock proc l;
        let w =
          Pthread.create proc
            ~attr:(Attr.with_name "writer" Attr.default)
            (fun () ->
              Rwlock.write_lock proc l;
              Rwlock.write_unlock proc l;
              0)
        in
        Pthread.delay proc ~ns:50_000 (* let the writer block *);
        Rwlock.read_unlock proc l;
        ignore (Pthread.join proc w);
        (* a leaked waiting_writers count would block this forever *)
        Rwlock.read_lock proc l;
        Rwlock.read_unlock proc l;
        0)
  in
  let _, points, _ = Fault.Soak.run_one ~mk [] in
  check bool "fault points exist" true (points > 0);
  let injected_total = ref 0 in
  for p = 0 to points - 1 do
    let plan = [ { Fault.Plan.at = p; act = Fault.Plan.Cancel 1 } ] in
    let outcome, _, injected = Fault.Soak.run_one ~mk plan in
    injected_total := !injected_total + injected;
    match outcome with
    | None -> ()
    | Some k ->
        Alcotest.failf "cancel at fault point %d: %s" p
          (Check.Explore.failure_kind_to_string k)
  done;
  check bool "some cancels were injected" true (!injected_total > 0)

(* A party canceled while parked at a barrier must retract its arrival
   and release the barrier mutex; without the unwind, every later cycle
   either releases one early (counting the ghost) or hangs, and the
   leaked mutex deadlocks the next arrival.  Sweep a cancellation over
   every fault point.  The harness must stay deadlock-free whether the
   victim dies before arriving, while parked, or after its cycle already
   completed — so main never guesses from the victim's exit status
   (a pending cancel can still kill it on the way out of a completed
   cycle); it joins the victim first, then watches the barrier: a lone
   stranded arrival can only be the partner, and main fills in for the
   dead victim. *)
let test_barrier_cancel_no_leak () =
  let mk () =
    Pthread.make_proc (fun proc ->
        ignore (Cancel.set_state proc Types.Cancel_disabled : Types.cancel_state);
        let b = Barrier.create proc 2 in
        let partner_done = ref false in
        let victim =
          Pthread.create proc
            ~attr:(Attr.with_name "victim" Attr.default)
            (fun () ->
              ignore (Barrier.wait proc b : Barrier.outcome);
              0)
        in
        let partner =
          Pthread.create proc
            ~attr:(Attr.with_name "partner" Attr.default)
            (fun () ->
              ignore
                (Cancel.set_state proc Types.Cancel_disabled
                  : Types.cancel_state);
              Pthread.delay proc ~ns:100_000;
              ignore (Barrier.wait proc b : Barrier.outcome);
              partner_done := true;
              0)
        in
        ignore (Pthread.join proc victim);
        (* victim's fate is settled; if its arrival was retracted the
           partner strands alone and main pairs with it *)
        let rec settle () =
          if not !partner_done then
            if Barrier.waiting b = 1 then begin
              ignore (Barrier.wait proc b : Barrier.outcome);
              settle ()
            end
            else begin
              Pthread.delay proc ~ns:20_000;
              settle ()
            end
        in
        settle ();
        ignore (Pthread.join proc partner);
        0)
  in
  let _, points, _ = Fault.Soak.run_one ~mk [] in
  check bool "fault points exist" true (points > 0);
  let injected_total = ref 0 in
  for p = 0 to points - 1 do
    let plan = [ { Fault.Plan.at = p; act = Fault.Plan.Cancel 1 } ] in
    let outcome, _, injected = Fault.Soak.run_one ~mk plan in
    injected_total := !injected_total + injected;
    match outcome with
    | None -> ()
    | Some k ->
        Alcotest.failf "cancel at fault point %d: %s" p
          (Check.Explore.failure_kind_to_string k)
  done;
  check bool "some cancels were injected" true (!injected_total > 0)

let test_barrier_invalid () =
  ignore
    (run_main (fun proc ->
         (try
            ignore (Barrier.create proc 0);
            Alcotest.fail "zero parties must raise"
          with Invalid_argument _ -> ());
         0));
  ()

let test_barrier_single_party () =
  ignore
    (run_main (fun proc ->
         let b = Barrier.create proc 1 in
         check bool "sole party is serial" true (Barrier.wait proc b = Barrier.Serial);
         check bool "again" true (Barrier.wait proc b = Barrier.Serial);
         0));
  ()

let suite =
  [
    ( "rwlock",
      [
        tc "multiple readers" test_rw_multiple_readers;
        tc "writer excludes" test_rw_writer_excludes;
        tc "writer preference" test_rw_writer_preference;
        tc "try variants" test_rw_try_variants;
        tc "errors" test_rw_errors;
        tc "with helpers" test_rw_with_helpers;
        tc "exclusion under perversion" test_rw_under_perverted;
        tc "canceled writer leaks no waiter" test_rw_writer_cancel_no_leak;
      ] );
    ( "barrier",
      [
        tc "releases all" test_barrier_releases_all;
        tc "cyclic" test_barrier_cyclic;
        tc "invalid" test_barrier_invalid;
        tc "canceled party leaks nothing" test_barrier_cancel_no_leak;
        tc "single party" test_barrier_single_party;
      ] );
  ]
