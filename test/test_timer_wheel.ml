(* The hierarchical timing wheel against a sorted-list reference model.

   The wheel replaced a linear [timer list] in the virtual kernel; what
   must be preserved is not just "timers fire" but the exact observable
   contract the deterministic scheduler and the DPOR replayer lean on:
   same-tick timers fire in (expiry, id) order, interval timers catch up
   with the BSD missed-periods-collapse formula, and [next_expiry] is a
   monotone lower bound that converges in at most [levels] refinements. *)

open Tu
module W = Vm.Timer_wheel
module K = Vm.Unix_kernel
module Sigset = Vm.Sigset
module Cost_model = Vm.Cost_model

(* ------------------------------------------------------------------ *)
(* Reference model: a plain association list, sorted on demand          *)
(* ------------------------------------------------------------------ *)

type mtimer = { mid : int; mutable mexp : int; mint : int }

type model = {
  mutable armed_m : mtimer list;  (** unsorted *)
  mutable next_mid : int;
}

let m_create () = { armed_m = []; next_mid = 1 }

let m_arm m ~now ~after_ns ~interval_ns =
  let id = m.next_mid in
  m.next_mid <- id + 1;
  let e = now + after_ns in
  let expiry = if e < now then now else e in
  m.armed_m <- { mid = id; mexp = expiry; mint = interval_ns } :: m.armed_m;
  id

let m_disarm m id =
  let present = List.exists (fun t -> t.mid = id) m.armed_m in
  m.armed_m <- List.filter (fun t -> t.mid <> id) m.armed_m;
  present

(* Fire everything due at [now], in (expiry, id) order; interval timers
   re-arm at the first multiple of their interval strictly after [now]. *)
let m_advance m ~now =
  let due, keep = List.partition (fun t -> t.mexp <= now) m.armed_m in
  let due =
    List.sort
      (fun a b ->
        if a.mexp <> b.mexp then compare a.mexp b.mexp
        else compare a.mid b.mid)
      due
  in
  let fired = List.map (fun t -> t.mid) due in
  let rearmed =
    List.filter_map
      (fun t ->
        if t.mint > 0 then begin
          (if now >= t.mexp + t.mint then
             let missed = (now - t.mexp) / t.mint in
             t.mexp <- t.mexp + ((missed + 1) * t.mint)
           else t.mexp <- t.mexp + t.mint);
          Some t
        end
        else None)
      due
  in
  m.armed_m <- keep @ rearmed;
  fired

let m_min_expiry m =
  List.fold_left (fun acc t -> min acc t.mexp) max_int m.armed_m

(* ------------------------------------------------------------------ *)
(* Property: random op sequences agree with the model                   *)
(* ------------------------------------------------------------------ *)

type op =
  | Arm of int * int  (** after_ns, interval_ns *)
  | Disarm of int  (** an id hint, reduced mod ids handed out *)
  | Advance of int  (** dt >= 0 *)

(* Deltas span every wheel level: slot-local (level 0), mid-range, and
   far-future values that must cascade across many levels before firing. *)
let delta_gen =
  QCheck2.Gen.(
    frequency
      [
        (3, int_range 0 100);
        (3, int_range 1_000 1_000_000);
        (2, int_range 1_000_000 1_000_000_000);
        (1, int_range 1_000_000_000 (1 lsl 45));
      ])

let op_gen =
  QCheck2.Gen.(
    frequency
      [
        ( 4,
          let* after = delta_gen in
          let* has_interval = frequency [ (3, return false); (1, return true) ] in
          let* interval = int_range 1 2_000_000 in
          return (Arm (after, if has_interval then interval else 0)) );
        (1, map (fun h -> Disarm h) small_nat);
        (3, map (fun d -> Advance d) delta_gen);
      ])

let ops_gen = QCheck2.Gen.(list_size (int_range 10 120) op_gen)

let run_against_model ops =
  let w = W.create () in
  let m = m_create () in
  let check_after_advance now =
    if W.armed w <> List.length m.armed_m then
      QCheck2.Test.fail_reportf "armed mismatch: wheel %d, model %d"
        (W.armed w) (List.length m.armed_m);
    (* next_expiry: None iff empty; otherwise a bound in
       (now, min-true-expiry]. *)
    match W.next_expiry w with
    | None ->
        if m.armed_m <> [] then
          QCheck2.Test.fail_reportf "next_expiry None with %d armed"
            (List.length m.armed_m)
    | Some d ->
        if m.armed_m = [] then
          QCheck2.Test.fail_reportf "next_expiry %d on an empty wheel" d;
        if d <= now then
          QCheck2.Test.fail_reportf "next_expiry %d not in the future of %d" d
            now;
        let true_min = m_min_expiry m in
        if d > true_min then
          QCheck2.Test.fail_reportf
            "next_expiry %d overshoots the earliest expiry %d" d true_min
  in
  List.iter
    (fun op ->
      let now = W.now w in
      match op with
      | Arm (after_ns, interval_ns) ->
          let wid = W.arm w ~now ~after_ns ~interval_ns () in
          let mid = m_arm m ~now ~after_ns ~interval_ns in
          if wid <> mid then
            QCheck2.Test.fail_reportf "id mismatch: wheel %d, model %d" wid mid
      | Disarm hint ->
          (* ids are dense from 1: reduce the hint onto handed-out ids so
             roughly half the disarms hit a live timer *)
          let id = 1 + (hint mod max 1 (m.next_mid - 1)) in
          let wr = W.disarm w id in
          let mr = m_disarm m id in
          if wr <> mr then
            QCheck2.Test.fail_reportf "disarm %d: wheel %b, model %b" id wr mr
      | Advance dt ->
          let target = now + dt in
          let fired = ref [] in
          W.advance w ~now:target ~fire:(fun ~id () -> fired := id :: !fired);
          let got = List.rev !fired in
          let expected = m_advance m ~now:target in
          if got <> expected then
            QCheck2.Test.fail_reportf
              "advance to %d fired [%s], model expected [%s]" target
              (String.concat ";" (List.map string_of_int got))
              (String.concat ";" (List.map string_of_int expected));
          check_after_advance target)
    ops;
  (* Drain: follow next_expiry until the wheel is empty of one-shots.
     Interval timers never drain, so cap the rounds; every round must agree
     with the model. *)
  let rounds = ref 0 in
  let continue = ref true in
  while !continue && !rounds < 200 do
    incr rounds;
    match W.next_expiry w with
    | None -> continue := false
    | Some d ->
        let fired = ref [] in
        W.advance w ~now:d ~fire:(fun ~id () -> fired := id :: !fired);
        let got = List.rev !fired in
        let expected = m_advance m ~now:d in
        if got <> expected then
          QCheck2.Test.fail_reportf
            "drain advance to %d fired [%s], model expected [%s]" d
            (String.concat ";" (List.map string_of_int got))
            (String.concat ";" (List.map string_of_int expected));
        check_after_advance d
  done;
  true

let prop_model =
  QCheck2.Test.make ~count:300 ~name:"wheel agrees with sorted-list model"
    ops_gen run_against_model

(* ------------------------------------------------------------------ *)
(* Same-tick (expiry, id) firing order                                  *)
(* ------------------------------------------------------------------ *)

(* The list-based kernel prepended on arm and fired in reverse-arm order;
   the wheel must fire same-tick timers in arm (= id) order. *)
let test_same_tick_order () =
  let w = W.create () in
  let a = W.arm w ~now:0 ~after_ns:1_000 ~interval_ns:0 "a" in
  let b = W.arm w ~now:0 ~after_ns:1_000 ~interval_ns:0 "b" in
  let c = W.arm w ~now:0 ~after_ns:1_000 ~interval_ns:0 "c" in
  let fired = ref [] in
  W.advance w ~now:1_000 ~fire:(fun ~id _ -> fired := id :: !fired);
  check (Alcotest.list int) "arm order, not reverse-arm order" [ a; b; c ]
    (List.rev !fired)

(* Same tick reached by different routes: [a] arms far out and cascades
   down to level 0; [b] arms directly into the level-0 slot after the
   clock has already moved.  The cascade must merge before the slot
   fires, so [a] (the smaller id) still fires first. *)
let test_same_tick_cascade_merge () =
  let w = W.create () in
  let a = W.arm w ~now:0 ~after_ns:10_000 ~interval_ns:0 "a" in
  W.advance w ~now:9_990 ~fire:(fun ~id:_ _ -> Alcotest.fail "early fire");
  let b = W.arm w ~now:9_990 ~after_ns:10 ~interval_ns:0 "b" in
  let fired = ref [] in
  W.advance w ~now:10_000 ~fire:(fun ~id _ -> fired := id :: !fired);
  check (Alcotest.list int) "cascaded timer keeps id order" [ a; b ]
    (List.rev !fired);
  check bool "the far timer was re-bucketed at least once" true
    (W.cascades w > 0)

(* The same contract observed through the kernel: two one-shot SIGALRMs on
   the same tick both expire in one check_events, and BSD non-queuing
   collapses the second posting into a loss, not a deferral. *)
let test_kernel_same_tick_collapse () =
  let k = K.create Cost_model.sparc_ipx in
  let lost0 = K.signals_lost k in
  ignore (K.arm_timer k ~after_ns:50_000 ~interval_ns:0 ~signo:Sigset.sigalrm
            ~origin:(K.Timer 0) : int);
  ignore (K.arm_timer k ~after_ns:50_000 ~interval_ns:0 ~signo:Sigset.sigalrm
            ~origin:(K.Timer 0) : int);
  K.advance k 60_000;
  K.check_events k;
  check int "both one-shots expired" 0 (K.armed_timer_count k);
  check int "second same-tick posting was collapsed (BSD)" (lost0 + 1)
    (K.signals_lost k)

(* ------------------------------------------------------------------ *)
(* Cascade budget and next_expiry convergence                           *)
(* ------------------------------------------------------------------ *)

(* A single far-future timer: following next_expiry must converge on the
   exact expiry in at most [levels] refinement rounds (each round either
   fires or strictly tightens the bound), and the total re-bucketings
   stay within the amortized budget. *)
let test_far_future_convergence () =
  let w = W.create () in
  let expiry = 123_456_789_012_345 in
  ignore (W.arm w ~now:0 ~after_ns:expiry ~interval_ns:0 () : int);
  let fired_at = ref (-1) in
  let rounds = ref 0 in
  while !fired_at < 0 do
    incr rounds;
    if !rounds > W.levels then Alcotest.fail "next_expiry did not converge";
    match W.next_expiry w with
    | None -> Alcotest.fail "timer lost"
    | Some d -> W.advance w ~now:d ~fire:(fun ~id:_ () -> fired_at := d)
  done;
  check int "fired exactly at its expiry" expiry !fired_at;
  check bool
    (Printf.sprintf "cascades within budget (%d <= %d)" (W.cascades w)
       W.levels)
    true
    (W.cascades w <= W.levels)

(* Interval catch-up: a long advance collapses missed periods into one
   firing and re-arms strictly after the clock. *)
let test_interval_catch_up () =
  let w = W.create () in
  ignore (W.arm w ~now:0 ~after_ns:10_000 ~interval_ns:10_000 () : int);
  let fires = ref 0 in
  W.advance w ~now:95_000 ~fire:(fun ~id:_ () -> incr fires);
  check int "missed periods collapse into one firing" 1 !fires;
  check int "still armed" 1 (W.armed w);
  (match W.next_expiry w with
  | Some d ->
      (* a bucket deadline: a lower bound in (now, true expiry] *)
      check bool
        (Printf.sprintf "re-arm bound %d in (95000, 100000]" d)
        true
        (d > 95_000 && d <= 100_000)
  | None -> Alcotest.fail "interval timer lost");
  W.advance w ~now:100_000 ~fire:(fun ~id:_ () -> incr fires);
  check int "fires again on schedule" 2 !fires

(* armed is a maintained counter, not a scan: it must track arm / fire /
   disarm exactly (the kernel exposes it as armed_timer_count and the
   bench derives expired-timer totals from it). *)
let test_armed_count_tracks () =
  let w = W.create () in
  let ids =
    List.init 100 (fun i ->
        W.arm w ~now:0 ~after_ns:(1 + (i * 37 mod 5_000)) ~interval_ns:0 ())
  in
  check int "all armed" 100 (W.armed w);
  List.iteri
    (fun i id -> if i mod 3 = 0 then ignore (W.disarm w id : bool))
    ids;
  let disarmed = (100 + 2) / 3 in
  check int "disarms tracked" (100 - disarmed) (W.armed w);
  W.advance w ~now:5_001 ~fire:(fun ~id:_ () -> ());
  check int "fires tracked" 0 (W.armed w);
  check int "peak saw the full population" 100 (W.peak_armed w)

let suite =
  [
    ( "vm.timer_wheel",
      [
        QCheck_alcotest.to_alcotest prop_model;
        tc "same-tick order" test_same_tick_order;
        tc "same-tick cascade merge" test_same_tick_cascade_merge;
        tc "kernel same-tick collapse" test_kernel_same_tick_collapse;
        tc "far-future convergence" test_far_future_convergence;
        tc "interval catch-up" test_interval_catch_up;
        tc "armed count" test_armed_count_tracks;
      ] );
  ]
