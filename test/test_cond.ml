(* Condition variables: wakeup order, atomicity, timeouts, interruption. *)

open Tu
open Pthreads

let test_signal_wakes_one () =
  ignore
    (run_main (fun proc ->
         let m = Mutex.create proc () in
         let c = Cond.create proc () in
         let woken = ref 0 in
         let waiter () =
           Mutex.lock proc m;
           ignore (Cond.wait proc c m);
           incr woken;
           Mutex.unlock proc m
         in
         let t1 = Pthread.create_unit proc waiter in
         let t2 = Pthread.create_unit proc waiter in
         Pthread.delay proc ~ns:100_000;
         check int "two waiting" 2 (Cond.waiter_count c);
         Cond.signal proc c;
         Pthread.delay proc ~ns:100_000;
         check int "exactly one woke" 1 !woken;
         Cond.signal proc c;
         List.iter (fun t -> ignore (Pthread.join proc t)) [ t1; t2 ];
         check int "both eventually" 2 !woken;
         0));
  ()

let test_signal_empty_noop () =
  ignore
    (run_main (fun proc ->
         let c = Cond.create proc () in
         Cond.signal proc c;
         Cond.broadcast proc c;
         0));
  ()

let test_broadcast () =
  ignore
    (run_main (fun proc ->
         let m = Mutex.create proc () in
         let c = Cond.create proc () in
         let woken = ref 0 in
         let ts =
           List.init 5 (fun _ ->
               Pthread.create_unit proc (fun () ->
                   Mutex.lock proc m;
                   ignore (Cond.wait proc c m);
                   incr woken;
                   Mutex.unlock proc m))
         in
         Pthread.delay proc ~ns:100_000;
         Cond.broadcast proc c;
         List.iter (fun t -> ignore (Pthread.join proc t)) ts;
         check int "all woken" 5 !woken;
         0));
  ()

let test_priority_wakeup_order () =
  ignore
    (run_main (fun proc ->
         let m = Mutex.create proc () in
         let c = Cond.create proc () in
         let order = ref [] in
         let waiter name prio =
           Pthread.create_unit proc
             ~attr:(Attr.with_prio prio (Attr.with_name name Attr.default))
             (fun () ->
               Mutex.lock proc m;
               ignore (Cond.wait proc c m);
               order := name :: !order;
               Mutex.unlock proc m)
         in
         let ts = [ waiter "lo" 2; waiter "hi" 28; waiter "mid" 15 ] in
         Pthread.delay proc ~ns:100_000;
         for _ = 1 to 3 do
           Cond.signal proc c;
           Pthread.delay proc ~ns:50_000
         done;
         List.iter (fun t -> ignore (Pthread.join proc t)) ts;
         check (Alcotest.list string) "highest first" [ "hi"; "mid"; "lo" ]
           (List.rev !order);
         0));
  ()

let test_wait_requires_mutex () =
  ignore
    (run_main (fun proc ->
         let m = Mutex.create proc () in
         let c = Cond.create proc () in
         (try
            ignore (Cond.wait proc c m);
            Alcotest.fail "wait without mutex must raise"
          with Types.Error (Errno.EPERM, _) -> ());
         0));
  ()

let test_binding_to_second_mutex_rejected () =
  ignore
    (run_main (fun proc ->
         let m1 = Mutex.create proc ~name:"m1" () in
         let m2 = Mutex.create proc ~name:"m2" () in
         let c = Cond.create proc () in
         ignore
           (Pthread.create_unit proc (fun () ->
                Mutex.lock proc m1;
                ignore (Cond.wait proc c m1);
                Mutex.unlock proc m1));
         Pthread.delay proc ~ns:50_000;
         Mutex.lock proc m2;
         (try
            ignore (Cond.wait proc c m2);
            Alcotest.fail "second mutex must raise"
          with Types.Error (Errno.EINVAL, _) -> ());
         Mutex.unlock proc m2;
         Cond.signal proc c;
         0));
  ()

let test_mutex_released_during_wait () =
  ignore
    (run_main (fun proc ->
         let m = Mutex.create proc () in
         let c = Cond.create proc () in
         let saw_unlocked = ref false in
         ignore
           (Pthread.create_unit proc (fun () ->
                Mutex.lock proc m;
                ignore (Cond.wait proc c m);
                Mutex.unlock proc m));
         Pthread.delay proc ~ns:50_000;
         (* waiter suspended: the mutex must have been released atomically *)
         saw_unlocked := not (Mutex.is_locked m);
         Cond.signal proc c;
         check bool "mutex free while waiting" true !saw_unlocked;
         0));
  ()

let test_mutex_reacquired_on_return () =
  ignore
    (run_main (fun proc ->
         let m = Mutex.create proc () in
         let c = Cond.create proc () in
         let ok = ref false in
         let t =
           Pthread.create_unit proc (fun () ->
               Mutex.lock proc m;
               ignore (Cond.wait proc c m);
               ok := Mutex.owner_tid m = Some (Pthread.self proc);
               Mutex.unlock proc m)
         in
         Pthread.delay proc ~ns:50_000;
         Cond.signal proc c;
         ignore (Pthread.join proc t);
         check bool "owns mutex after wait" true !ok;
         0));
  ()

let test_timed_wait_times_out () =
  ignore
    (run_main (fun proc ->
         let m = Mutex.create proc () in
         let c = Cond.create proc () in
         Mutex.lock proc m;
         let t0 = Pthread.now proc in
         let r = Cond.timed_wait proc c m ~deadline_ns:(t0 + 500_000) in
         check bool "timed out" true (r = Cond.Timed_out);
         check bool "deadline respected" true (Pthread.now proc >= t0 + 500_000);
         check bool "mutex reacquired" true
           (Mutex.owner_tid m = Some (Pthread.self proc));
         Mutex.unlock proc m;
         0));
  ()

let test_timed_wait_signaled_in_time () =
  ignore
    (run_main (fun proc ->
         let m = Mutex.create proc () in
         let c = Cond.create proc () in
         let r = ref Cond.Timed_out in
         let t =
           Pthread.create_unit proc (fun () ->
               Mutex.lock proc m;
               r := Cond.timed_wait proc c m
                   ~deadline_ns:(Pthread.now proc + 5_000_000);
               Mutex.unlock proc m)
         in
         Pthread.delay proc ~ns:100_000;
         Cond.signal proc c;
         ignore (Pthread.join proc t);
         check bool "signaled" true (!r = Cond.Signaled);
         0));
  ()

(* A timed wait that ends early (signaled, not timed out) must disarm its
   one-shot kernel timer.  Observable directly in the kernel's armed-timer
   count, which the stats snapshot now exposes. *)
let test_timed_wait_signaled_disarms_timer () =
  ignore
    (run_main (fun proc ->
         let m = Mutex.create proc () in
         let c = Cond.create proc () in
         let before = (Engine.stats proc).Engine.timers_armed in
         let t =
           Pthread.create_unit proc (fun () ->
               Mutex.lock proc m;
               ignore
                 (Cond.timed_wait proc c m
                    ~deadline_ns:(Pthread.now proc + 5_000_000)
                   : Cond.wait_result);
               Mutex.unlock proc m)
         in
         Pthread.delay proc ~ns:100_000;
         Cond.signal proc c;
         ignore (Pthread.join proc t);
         check int "no timer left armed by the signaled timed wait" before
           (Engine.stats proc).Engine.timers_armed;
         0));
  ()

(* The behavioral consequence of a leaked one-shot: when the stale alarm
   finally fires, the thread has moved on to an untimed wait with no
   deadline, so the alarm rule delivers a spurious [Interrupted] wakeup
   there.  The second wait below must see the real signal. *)
let test_no_stale_alarm_hits_later_wait () =
  ignore
    (run_main (fun proc ->
         let m = Mutex.create proc () in
         let c = Cond.create proc () in
         let c2 = Cond.create proc () in
         let second = ref None in
         let t =
           Pthread.create_unit proc (fun () ->
               Mutex.lock proc m;
               ignore
                 (Cond.timed_wait proc c m
                    ~deadline_ns:(Pthread.now proc + 1_000_000)
                   : Cond.wait_result);
               second := Some (Cond.wait proc c2 m);
               Mutex.unlock proc m)
         in
         Pthread.delay proc ~ns:100_000;
         Cond.signal proc c;
         (* run far past the first wait's deadline before releasing it *)
         Pthread.delay proc ~ns:3_000_000;
         Cond.signal proc c2;
         ignore (Pthread.join proc t);
         check bool "second wait saw the signal, not a stale alarm" true
           (!second = Some Cond.Signaled);
         0));
  ()

let test_handler_interrupts_wait () =
  (* The wrapper reacquires the mutex and terminates the conditional wait;
     the woken thread must re-test its predicate (spurious wakeup). *)
  ignore
    (run_main (fun proc ->
         let m = Mutex.create proc () in
         let c = Cond.create proc () in
         let events = ref [] in
         Signal_api.set_action proc Sigset.sigusr1
           (Types.Sig_handler
              {
                h_mask = Sigset.empty;
                h_fn =
                  (fun ~signo:_ ~code:_ ->
                    (* the mutex is reacquired before the handler runs *)
                    events :=
                      (if Mutex.owner_tid m <> None then `Handler_with_mutex
                       else `Handler_without_mutex)
                      :: !events);
              });
         let t =
           Pthread.create proc (fun () ->
               Mutex.lock proc m;
               let r = Cond.wait proc c m in
               events := `Woke :: !events;
               Mutex.unlock proc m;
               match r with Cond.Interrupted -> 1 | _ -> 0)
         in
         Pthread.delay proc ~ns:50_000;
         Signal_api.kill proc t Sigset.sigusr1;
         (match Pthread.join proc t with
         | Types.Exited 1 -> ()
         | st -> Alcotest.failf "expected Interrupted, got %a" Types.pp_exit_status st);
         check bool "handler ran holding the mutex" true
           (List.mem `Handler_with_mutex !events);
         0));
  ()

let test_many_producers_consumers () =
  ignore
    (run_main (fun proc ->
         let m = Mutex.create proc () in
         let nonempty = Cond.create proc () in
         let q = Queue.create () in
         let produced = 40 and consumed = ref 0 in
         let producers =
           List.init 4 (fun i ->
               Pthread.create_unit proc (fun () ->
                   for j = 1 to 10 do
                     Mutex.lock proc m;
                     Queue.push ((i * 10) + j) q;
                     Cond.signal proc nonempty;
                     Mutex.unlock proc m;
                     Pthread.busy proc ~ns:2_000
                   done))
         in
         let consumers =
           List.init 2 (fun _ ->
               Pthread.create_unit proc (fun () ->
                   for _ = 1 to 20 do
                     Mutex.lock proc m;
                     while Queue.is_empty q do
                       ignore (Cond.wait proc nonempty m)
                     done;
                     ignore (Queue.pop q);
                     incr consumed;
                     Mutex.unlock proc m
                   done))
         in
         List.iter
           (fun t -> ignore (Pthread.join proc t))
           (producers @ consumers);
         check int "all consumed" produced !consumed;
         0));
  ()

let suite =
  [
    ( "cond",
      [
        tc "signal wakes one" test_signal_wakes_one;
        tc "signal on empty" test_signal_empty_noop;
        tc "broadcast" test_broadcast;
        tc "priority wakeup order" test_priority_wakeup_order;
        tc "wait requires mutex" test_wait_requires_mutex;
        tc "second mutex rejected" test_binding_to_second_mutex_rejected;
        tc "mutex released during wait" test_mutex_released_during_wait;
        tc "mutex reacquired on return" test_mutex_reacquired_on_return;
        tc "timed wait: timeout" test_timed_wait_times_out;
        tc "timed wait: signaled" test_timed_wait_signaled_in_time;
        tc "timed wait: timer disarmed" test_timed_wait_signaled_disarms_timer;
        tc "no stale alarm on later wait" test_no_stale_alarm_hits_later_wait;
        tc "handler interrupts wait" test_handler_interrupts_wait;
        tc "producers/consumers" test_many_producers_consumers;
      ] );
  ]
