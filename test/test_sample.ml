(* Probabilistic sampling (Check.Sample): PCT and uniform random walks,
   cross-validated against the DPOR explorer — every bug the exhaustive
   mode finds, the sampler must re-find under pinned seeds, and bug-free
   scenarios must stay quiet under a sampling budget.  Plus direct unit
   tests of the shrinking passes both modes share. *)

open Tu
module E = Check.Explore
module Sm = Check.Sample
module S = Check.Scenarios

let seed = Tu.seed_of "sample"

(* sampling needs no sleep sets and, for kind comparability with DPOR
   (which runs without the monitor), no sanitizer: on racy_counter the
   monitor would flag the race before the lost update manifests *)
let plain ~runs = { Sm.default_config with runs; sanitize = false }

let kind_name = function
  | E.Deadlocked _ -> "deadlock"
  | E.Killed _ -> "signal"
  | E.Invariant_violated _ -> "invariant"
  | E.Main_raised _ -> "raise"
  | E.Bad_exit _ -> "exit"

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

(* The buggy half of the catalogue, with the failure class DPOR finds.
   PCT must re-find the same class within its budget. *)
let buggy : (S.t * (E.failure_kind -> bool) * string) list =
  [
    ( S.deadlock_ab,
      (function E.Deadlocked _ -> true | _ -> false),
      "a deadlock" );
    ( S.racy_counter,
      (function E.Bad_exit 1 -> true | _ -> false),
      "a lost update (exit 1)" );
    ( S.lost_wakeup ~fixed:false,
      (function E.Deadlocked m -> contains m "blocked-on-cond" | _ -> false),
      "a lost-wakeup deadlock" );
    ( S.table4 ~mode:Pthreads.Types.Stack_pop,
      (function E.Invariant_violated m -> contains m "inheritance" | _ -> false),
      "the Table 4 inheritance violation" );
    ( S.cancel_cond_wait ~with_cleanup:false,
      (function
        | E.Invariant_violated m -> contains m "leaked" || contains m "still locked"
        | _ -> false),
      "the leaked mutex" );
  ]

(* scenarios with no reachable failure; the second list is additionally
   clean under the sanitizer (mirrors test_sanitize's clean catalogue) *)
let clean_plain =
  [
    S.table4 ~mode:Pthreads.Types.Recompute;
    S.cancel_states;
    S.lost_wakeup_no_loop;
  ]

let clean_sanitized =
  [
    S.ordered_ab;
    S.micro_two;
    S.three_two;
    S.lost_wakeup ~fixed:true;
    S.ceiling_nested;
    S.timed_consumer;
    S.cancel_cond_wait ~with_cleanup:true;
  ]

(* -------------------------------------------------------------------- *)

let test_cross_validation () =
  List.iter
    (fun ((s : S.t), classify, what) ->
      (* the exhaustive verdict first... *)
      let dpor =
        match (E.run s.S.make).failure with
        | Some f -> f
        | None -> Alcotest.failf "%s: DPOR found nothing" s.S.name
      in
      if not (classify dpor.E.kind) then
        Alcotest.failf "%s: DPOR found %s, not %s" s.S.name
          (E.failure_kind_to_string dpor.E.kind)
          what;
      (* ...then PCT must re-find the same class under the pinned seed *)
      let r =
        Sm.run ~config:(plain ~runs:4000) ~method_:(Sm.Pct { depth = 3 }) ~seed
          s.S.make
      in
      match r.Sm.s_failure with
      | None ->
          Alcotest.failf "%s: PCT missed %s in %d runs [seed %#x]" s.S.name
            what r.Sm.s_runs seed
      | Some f ->
          if not (classify f.E.kind) then
            Alcotest.failf "%s: PCT found %s, DPOR found %s [seed %#x]"
              s.S.name
              (E.failure_kind_to_string f.E.kind)
              (E.failure_kind_to_string dpor.E.kind)
              seed;
          (* the shrunk counterexample replays byte-for-byte *)
          let rep = Check.Replay.run s.S.make f.E.schedule in
          check bool
            (s.S.name ^ " counterexample replays faithfully")
            true
            (rep.Check.Replay.diverged_at = None
            && match rep.Check.Replay.outcome with
               | Some k -> kind_name k = kind_name f.E.kind
               | None -> false))
    buggy

let test_uniform_finds_shallow_bugs () =
  List.iter
    (fun ((s : S.t), classify, what) ->
      let r =
        Sm.run ~config:(plain ~runs:2000) ~method_:Sm.Uniform ~seed s.S.make
      in
      match r.Sm.s_failure with
      | None -> Alcotest.failf "%s: uniform walk missed %s" s.S.name what
      | Some f ->
          check bool (s.S.name ^ " class matches") true (classify f.E.kind))
    [ List.nth buggy 0; List.nth buggy 1 ]

let test_clean_scenarios_quiet () =
  let budget = { Sm.default_config with runs = 150 } in
  List.iter
    (fun ((s : S.t), sanitize) ->
      List.iter
        (fun method_ ->
          let r =
            Sm.run ~config:{ budget with sanitize } ~method_ ~seed s.S.make
          in
          (match r.Sm.s_failure with
          | Some f ->
              Alcotest.failf "%s under %s: spurious %s [seed %#x]" s.S.name
                (Sm.method_to_string method_)
                (E.failure_kind_to_string f.E.kind)
                seed
          | None -> ());
          check int
            (s.S.name ^ " ran the full budget")
            budget.Sm.runs r.Sm.s_runs)
        [ Sm.Pct { depth = 3 }; Sm.Uniform ])
    (List.map (fun s -> (s, false)) clean_plain
    @ List.map (fun s -> (s, true)) clean_sanitized)

let test_seed_reproducibility () =
  (* byte-for-byte: the whole report, counterexample included, is a pure
     function of (scenario, method, seed) *)
  let go () =
    Sm.run ~config:(plain ~runs:4000) ~method_:(Sm.Pct { depth = 3 }) ~seed
      S.deadlock_ab.S.make
  in
  let a = go () and b = go () in
  check int "same failing run index"
    (Option.get a.Sm.s_failure_index)
    (Option.get b.Sm.s_failure_index);
  check int "same total steps" a.Sm.s_steps b.Sm.s_steps;
  let sa = (Option.get a.Sm.s_failure).E.schedule
  and sb = (Option.get b.Sm.s_failure).E.schedule in
  check bool "identical shrunk schedule" true (Check.Schedule.equal sa sb);
  check bool "identical first schedule" true
    (Check.Schedule.equal (Option.get a.Sm.s_failure).E.first_schedule
       (Option.get b.Sm.s_failure).E.first_schedule)

let test_failure_index_rederives () =
  (* run i draws from Rng.fork(seed, i) alone, so truncating the budget to
     i+1 runs must rediscover the identical failure *)
  let full =
    Sm.run ~config:(plain ~runs:4000) ~method_:(Sm.Pct { depth = 3 }) ~seed
      S.deadlock_ab.S.make
  in
  let i = Option.get full.Sm.s_failure_index in
  let again =
    Sm.run
      ~config:(plain ~runs:(i + 1))
      ~method_:(Sm.Pct { depth = 3 })
      ~seed S.deadlock_ab.S.make
  in
  check int "same index" i (Option.get again.Sm.s_failure_index);
  check bool "same schedule" true
    (Check.Schedule.equal
       (Option.get full.Sm.s_failure).E.schedule
       (Option.get again.Sm.s_failure).E.schedule)

let test_pct_bound () =
  let r =
    Sm.run
      ~config:{ (plain ~runs:50) with sanitize = false }
      ~method_:(Sm.Pct { depth = 2 })
      ~seed S.three_two.S.make
  in
  match r.Sm.s_bound with
  | None -> Alcotest.fail "PCT must surface its bound"
  | Some b ->
      check int "targeted depth" 2 b.Sm.b_depth;
      check bool "n from the workload" true (b.Sm.b_threads >= 3);
      check bool "k from the workload" true (b.Sm.b_steps >= b.Sm.b_threads);
      check bool "0 < p <= 1" true (b.Sm.b_single > 0.0 && b.Sm.b_single <= 1.0);
      check bool "cumulative >= single" true
        (b.Sm.b_cumulative >= b.Sm.b_single);
      check bool "uniform has no bound" true
        ((Sm.run ~config:(plain ~runs:10) ~method_:Sm.Uniform ~seed
            S.micro_two.S.make)
           .Sm.s_bound
        = None)

let test_sanitizer_findings_count () =
  (* with the monitor attached, racy_counter fails on the very first runs:
     either the lost update manifests (exit 1) or the race is predicted *)
  let r =
    Sm.run
      ~config:{ Sm.default_config with runs = 50 }
      ~method_:Sm.Uniform ~seed S.racy_counter.S.make
  in
  match r.Sm.s_failure with
  | None -> Alcotest.fail "sanitized sampling missed the racy counter"
  | Some f -> (
      match f.E.kind with
      | E.Bad_exit 1 -> ()
      | E.Invariant_violated m ->
          check bool "finding attributed to the sanitizer" true
            (contains m "sanitizer")
      | k ->
          Alcotest.failf "unexpected kind %s" (E.failure_kind_to_string k))

(* -------------------------------------------------------------------- *)
(* Shrinker unit tests (Explore.Shrink over synthetic predicates)        *)
(* -------------------------------------------------------------------- *)

let remove_at a i =
  Array.append (Array.sub a 0 i) (Array.sub a (i + 1) (Array.length a - i - 1))

let one_minimal ~fails a =
  let ok = ref true in
  for i = 0 to Array.length a - 1 do
    if fails (remove_at a i) then ok := false
  done;
  !ok

let test_shrink_prefix_search () =
  (* monotone predicate: shortest failing prefix found exactly *)
  let fails a = Array.length a >= 5 in
  let full = Array.init 12 (fun i -> i) in
  check int "shortest failing prefix" 5
    (Array.length (E.Shrink.prefix_search ~fails full));
  (* non-monotone: binary search may land wrong; verified fallback keeps
     the result failing *)
  let fails a = Array.length a = 6 || Array.length a = 3 in
  let got = E.Shrink.prefix_search ~fails (Array.init 6 (fun i -> i)) in
  check bool "non-monotone result still fails" true (fails got);
  (* empty input passes through *)
  check int "empty" 0
    (Array.length (E.Shrink.prefix_search ~fails:(fun _ -> true) [||]))

let test_shrink_splice () =
  let mem x a = Array.exists (( = ) x) a in
  let fails a = mem 3 a && mem 7 a in
  let got = E.Shrink.minimize ~fails [| 1; 3; 5; 7; 9; 3 |] in
  check bool "kept only the needed elements, in order" true
    (Array.to_list got = [ 3; 7 ]);
  check bool "still fails" true (fails got);
  check bool "1-minimal" true (one_minimal ~fails got)

let test_shrink_count_predicate () =
  (* at least three 2s: splice must strip everything else *)
  let fails a = Array.fold_left (fun n x -> if x = 2 then n + 1 else n) 0 a >= 3 in
  let got = E.Shrink.minimize ~fails [| 0; 2; 1; 2; 3; 2; 2; 1 |] in
  check bool "exactly the witnesses remain" true
    (Array.to_list got = [ 2; 2; 2 ]);
  check bool "1-minimal" true (one_minimal ~fails got)

let shrink_qcheck =
  (* generic contract on a random instance: whenever the full list fails,
     the minimized list still fails and is 1-minimal *)
  Tu.qcheck ~count:300 ~seed_key:"shrink" "minimize: fails and 1-minimal"
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 25) (int_range 0 3))
        (int_range 1 4))
    (fun (l, need) ->
      let full = Array.of_list l in
      let fails a =
        Array.fold_left (fun n x -> if x = 2 then n + 1 else n) 0 a >= need
      in
      if not (fails full) then true
      else
        let m = E.Shrink.minimize ~fails full in
        fails m && one_minimal ~fails m)

(* -------------------------------------------------------------------- *)

let test_soak_pct_mode () =
  (* the fault soak's schedule dimension: with PCT on, the unfixed lost
     wakeup falls out as a replayable schedule even though no fault plan
     perturbs it (sanitizer off so the clean calibration run passes) *)
  let config =
    {
      Fault.Soak.default_config with
      seeds = [ seed ];
      sanitize = false;
      pct_depth = Some 3;
      pct_runs = 1000;
    }
  in
  let r = Fault.Soak.soak ~config [ S.lost_wakeup ~fixed:false ] in
  match
    List.filter (fun f -> f.Fault.Soak.f_sched <> None) r.Fault.Soak.r_failures
  with
  | [] -> Alcotest.fail "PCT soak missed the lost wakeup"
  | f :: _ ->
      (match f.Fault.Soak.f_kind with
      | E.Deadlocked _ -> ()
      | k ->
          Alcotest.failf "expected a deadlock, got %s"
            (E.failure_kind_to_string k));
      check bool "no plan on a schedule finding" true
        (f.Fault.Soak.f_plan = []);
      let sched = Option.get f.Fault.Soak.f_sched in
      let rep = Check.Replay.run (S.lost_wakeup ~fixed:false).S.make sched in
      check bool "soak schedule replays" true
        (rep.Check.Replay.diverged_at = None
        && match rep.Check.Replay.outcome with
           | Some (E.Deadlocked _) -> true
           | _ -> false)

let suite =
  [
    ( "sample",
      [
        tc "cross-validation: PCT re-finds every DPOR bug"
          test_cross_validation;
        tc "uniform walk finds shallow bugs" test_uniform_finds_shallow_bugs;
        tc "clean scenarios: zero findings" test_clean_scenarios_quiet;
        tc "pinned seed reproduces byte-for-byte" test_seed_reproducibility;
        tc "failure index re-derives the stream" test_failure_index_rederives;
        tc "PCT bound surfaced and sane" test_pct_bound;
        tc "sanitizer findings count as failures"
          test_sanitizer_findings_count;
        tc "fault soak: PCT schedule dimension" test_soak_pct_mode;
        tc "shrink: prefix search" test_shrink_prefix_search;
        tc "shrink: splice to 1-minimal" test_shrink_splice;
        tc "shrink: count predicate" test_shrink_count_predicate;
        shrink_qcheck;
      ] );
  ]
