(* The schedule explorer (lib/check): systematic interleaving coverage with
   DPOR pruning, minimal replayable counterexamples, and the paper's bug
   catalogue (lock-order deadlock, lost wakeup, Table 4 protocol mixing,
   Table 1 cancellation during Cond.wait) reproduced as *found* bugs. *)

open Tu
open Pthreads
module E = Check.Explore
module S = Check.Scenarios

let found (r : E.result) =
  match r.failure with
  | Some f -> f
  | None -> Alcotest.fail "expected the explorer to find a failure"

let safe name (r : E.result) =
  (match r.failure with
  | Some f ->
      Alcotest.failf "%s should be safe, found %s" name
        (E.failure_kind_to_string f.kind)
  | None -> ());
  check bool (name ^ " explored exhaustively") true r.stats.complete

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

(* -------------------------------------------------------------------- *)

let test_deadlock_found_and_replayed () =
  let f = found (E.run S.deadlock_ab.make) in
  (match f.kind with
  | E.Deadlocked _ -> ()
  | k -> Alcotest.failf "expected a deadlock, got %s" (E.failure_kind_to_string k));
  check bool "shrunk is no longer than the first witness" true
    (Check.Schedule.length f.schedule
    <= Check.Schedule.length f.first_schedule);
  (* determinism: two replays of the minimal schedule agree exactly *)
  let r1 = Check.Replay.run S.deadlock_ab.make f.schedule in
  let r2 = Check.Replay.run S.deadlock_ab.make f.schedule in
  (match (r1.outcome, r2.outcome) with
  | Some (E.Deadlocked a), Some (E.Deadlocked b) ->
      check string "same deadlock both times" a b
  | _ -> Alcotest.fail "replay did not reproduce the deadlock");
  check int "same step count" r1.steps r2.steps;
  check bool "no divergence" true (r1.diverged_at = None && r2.diverged_at = None)

let test_ordered_safe () = safe "ordered-ab" (E.run S.ordered_ab.make)

let test_three_two_exhaustive () =
  (* the acceptance program: 3 threads over 2 mutexes, exhausted with DPOR *)
  let r = E.run S.three_two.make in
  safe "three-two" r;
  check bool "DPOR actually pruned" true (r.stats.pruned > 0)

let test_racy_counter_found () =
  let f = found (E.run S.racy_counter.make) in
  match f.kind with
  | E.Bad_exit 1 -> ()
  | k -> Alcotest.failf "expected lost update (exit 1), got %s"
           (E.failure_kind_to_string k)

let test_lost_wakeup_found () =
  let f = found (E.run (S.lost_wakeup ~fixed:false).make) in
  match f.kind with
  | E.Deadlocked msg ->
      check bool "consumer stuck on the condition" true
        (contains msg "blocked-on-cond")
  | k -> Alcotest.failf "expected a lost-wakeup deadlock, got %s"
           (E.failure_kind_to_string k)

let test_lost_wakeup_fixed_safe () =
  safe "lost-wakeup-fixed" (E.run (S.lost_wakeup ~fixed:true).make)

let test_table4_stack_pop_found () =
  (* the paper's Table 4 divergence, rediscovered as a counterexample *)
  let f = found (E.run (S.table4 ~mode:Types.Stack_pop).make) in
  match f.kind with
  | E.Invariant_violated msg ->
      check bool "names the inheritance discipline" true
        (contains msg "inheritance")
  | k -> Alcotest.failf "expected an invariant violation, got %s"
           (E.failure_kind_to_string k)

let test_table4_recompute_safe () =
  safe "table4-recompute" (E.run (S.table4 ~mode:Types.Recompute).make)

let test_ceiling_nested_safe () =
  safe "ceiling-nested" (E.run S.ceiling_nested.make)

(* Satellite: exhaustive cancellation x Cond.wait (paper Table 1).  With a
   cleanup handler no schedule leaks the mutex; without one, the canceled
   thread keeps the reacquired mutex and the explorer pins the leak. *)
let test_cancel_cond_wait_clean () =
  safe "cancel-cond-wait" (E.run (S.cancel_cond_wait ~with_cleanup:true).make)

let test_cancel_cond_wait_leak_found () =
  let f = found (E.run (S.cancel_cond_wait ~with_cleanup:false).make) in
  match f.kind with
  | E.Invariant_violated msg ->
      check bool "reports the leaked mutex" true
        (contains msg "leaked" || contains msg "still locked")
  | k -> Alcotest.failf "expected a leaked-mutex violation, got %s"
           (E.failure_kind_to_string k)

(* -------------------------------------------------------------------- *)

(* Exact reduction measurement on a 2-thread program: full enumeration
   (DPOR and sleep sets off) visits every interleaving; DPOR must agree on
   the verdict while running strictly fewer schedules. *)
let test_dpor_reduction () =
  let full =
    E.run ~config:{ E.default_config with dpor = false; sleep_sets = false }
      S.micro_two.make
  in
  let dpor = E.run S.micro_two.make in
  safe "micro (full enumeration)" full;
  safe "micro (DPOR)" dpor;
  check bool "full enumeration is not trivial" true (full.stats.runs > 10);
  check bool
    (Printf.sprintf "DPOR explores fewer schedules (%d < %d)" dpor.stats.runs
       full.stats.runs)
    true
    (dpor.stats.runs < full.stats.runs)

let test_sampling_finds_deadlock () =
  let r = E.sample ~runs:200 ~seed:7 S.deadlock_ab.make in
  let f = found r in
  check bool "sampling is never exhaustive" false r.stats.complete;
  let rep = Check.Replay.run S.deadlock_ab.make f.schedule in
  match rep.outcome with
  | Some (E.Deadlocked _) -> check bool "replay faithful" true (rep.diverged_at = None)
  | _ -> Alcotest.fail "sampled counterexample did not replay"

(* -------------------------------------------------------------------- *)
(* Parallel DPOR (run_parallel): determinism across domain counts        *)
(* -------------------------------------------------------------------- *)

(* Canonical schedule set of one exploration: every executed run's
   complete decision list, sorted — traversal order must not matter. *)
let explored ~domains (s : S.t) =
  let acc = ref [] in
  let r = E.run_parallel ~domains ~record:(fun sc -> acc := sc :: !acc) s.S.make in
  let set = List.sort compare (List.map Array.to_list !acc) in
  (r, set)

let kind_tag = function
  | E.Deadlocked m -> "deadlock:" ^ m
  | E.Killed s -> "signal:" ^ string_of_int s
  | E.Invariant_violated m -> "invariant:" ^ m
  | E.Main_raised m -> "raise:" ^ m
  | E.Bad_exit n -> "exit:" ^ string_of_int n

let test_parallel_deterministic () =
  (* the full catalogue: schedule set, verdict and stats must be identical
     for 1, 2 and 4 domains *)
  List.iter
    (fun (s : S.t) ->
      let r1, set1 = explored ~domains:1 s in
      let r2, set2 = explored ~domains:2 s in
      let r4, set4 = explored ~domains:4 s in
      check bool (s.S.name ^ ": schedule sets 1=2") true (set1 = set2);
      check bool (s.S.name ^ ": schedule sets 1=4") true (set1 = set4);
      check int (s.S.name ^ ": runs agree") r1.E.stats.runs r2.E.stats.runs;
      check int (s.S.name ^ ": steps agree") r1.E.stats.steps r4.E.stats.steps;
      let cx r =
        match r.E.failure with
        | Some f -> Some (Array.to_list f.schedule, kind_tag f.kind)
        | None -> None
      in
      check bool (s.S.name ^ ": counterexample 1=2") true (cx r1 = cx r2);
      check bool (s.S.name ^ ": counterexample 1=4") true (cx r1 = cx r4))
    S.all

let test_parallel_agrees_with_sequential () =
  (* same verdicts as the depth-first driver on both halves of the
     catalogue (the traversal differs, so only verdicts are comparable) *)
  let f = found (E.run_parallel ~domains:2 S.deadlock_ab.make) in
  (match f.kind with
  | E.Deadlocked _ -> ()
  | k -> Alcotest.failf "expected a deadlock, got %s" (E.failure_kind_to_string k));
  let rep = Check.Replay.run S.deadlock_ab.make f.schedule in
  (match rep.outcome with
  | Some (E.Deadlocked _) ->
      check bool "parallel counterexample replays" true (rep.diverged_at = None)
  | _ -> Alcotest.fail "parallel counterexample did not replay");
  let r = E.run_parallel ~domains:2 S.three_two.make in
  safe "three-two (parallel)" r;
  check bool "no exhaustion report on a complete run" true
    (r.stats.exhausted = None);
  check bool "parallel sleep sets prune too" true (r.stats.pruned > 0)

let test_parallel_rejects_bad_domains () =
  match E.run_parallel ~domains:0 S.micro_two.make with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "domains = 0 must be rejected"

(* Differential soundness: all steps within a Mazurkiewicz trace class
   commute, so a sound reduction must reach exactly the final states full
   enumeration reaches.  This catches pruning bugs that verdict agreement
   on the catalogue cannot — e.g. two sibling subtrees sleeping each
   other, which silently drops a whole trace class from both. *)
let test_parallel_covers_all_final_states () =
  let finals : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  (* seeded 2-thread programs whose every write is non-commutative, so a
     missed interleaving class shows up as a missing final state *)
  let program seed =
    let master = Vm.Rng.create seed in
    let script =
      Array.init 2 (fun _ ->
          Array.init 2 (fun _ ->
              ( Vm.Rng.int master 4,
                Vm.Rng.int master 2,
                Vm.Rng.int master 2,
                1 + Vm.Rng.int master 7 )))
    in
    fun proc ->
      let m =
        [|
          Mutex.create proc ~name:"m0" (); Mutex.create proc ~name:"m1" ();
        |]
      in
      let v = [| ref 1; ref 1 |] in
      let op tid (kind, mi, vi, k) =
        match kind with
        | 0 ->
            Mutex.lock proc m.(mi);
            E.touch proc vi;
            v.(vi) := (!(v.(vi)) * 3) + k + tid;
            Mutex.unlock proc m.(mi)
        | 1 ->
            E.touch proc vi;
            v.(vi) := (!(v.(vi)) * 5) + k
        | 2 ->
            E.touch_read proc vi;
            let x = !(v.(vi)) in
            E.touch proc (1 - vi);
            v.(1 - vi) := (!(v.(1 - vi)) * 7) + (x mod 11)
        | _ ->
            Mutex.lock proc m.(mi);
            Mutex.unlock proc m.(mi)
      in
      let ts =
        Array.to_list
          (Array.mapi
             (fun tid ops ->
               Pthread.create proc (fun () ->
                   Array.iter (op (tid + 1)) ops;
                   0))
             script)
      in
      List.iter (fun t -> ignore (Pthread.join proc t)) ts;
      Hashtbl.replace finals (Hashtbl.hash (!(v.(0)), !(v.(1)))) ();
      0
  in
  let collect mode mk =
    Hashtbl.reset finals;
    (* full enumeration of a few seeds tops 100k runs; give it room *)
    let cfg = { E.default_config with max_runs = 500_000 } in
    let r =
      match mode with
      | `Full -> E.run ~config:{ cfg with dpor = false; sleep_sets = false } mk
      | `Seq -> E.run ~config:cfg mk
      | `Par -> E.run_parallel ~config:cfg ~domains:2 mk
    in
    check bool "exploration completed" true r.E.stats.complete;
    List.sort_uniq compare (Hashtbl.fold (fun k () acc -> k :: acc) finals [])
  in
  for seed = 1 to 15 do
    let body = program seed in
    let mk () = Pthread.make_proc body in
    let full = collect `Full mk in
    let seq = collect `Seq mk in
    let par = collect `Par mk in
    check bool
      (Printf.sprintf "seed %d: sequential DPOR reaches all final states"
         seed)
      true (seq = full);
    check bool
      (Printf.sprintf "seed %d: parallel DPOR reaches all final states" seed)
      true (par = full)
  done

(* Satellite fix: a truncated exploration reports what was left, instead
   of just clearing [complete]. *)
let test_budget_exhaustion_reported () =
  let cfg = { E.default_config with max_runs = 2 } in
  List.iter
    (fun (what, (r : E.result)) ->
      check bool (what ^ ": not complete") false r.stats.complete;
      match r.stats.exhausted with
      | None -> Alcotest.failf "%s: truncation must be reported" what
      | Some e ->
          check bool
            (what ^ ": frontier remaining")
            true (e.E.ex_frontier > 0))
    [
      ("sequential", E.run ~config:cfg S.three_two.make);
      ("parallel", E.run_parallel ~config:cfg ~domains:2 S.three_two.make);
    ];
  (* a zero budget runs nothing and still reports the unexplored root *)
  let r0 = E.run ~config:{ cfg with max_runs = 0 } S.micro_two.make in
  check int "zero budget runs nothing" 0 r0.stats.runs;
  check bool "zero budget is exhausted" true (r0.stats.exhausted <> None)

let test_step_budget_cut_reported () =
  let cfg = { E.default_config with max_steps = 3 } in
  List.iter
    (fun (what, (r : E.result)) ->
      check bool (what ^ ": not complete") false r.stats.complete;
      match r.stats.exhausted with
      | None -> Alcotest.failf "%s: cut runs must be reported" what
      | Some e ->
          check bool (what ^ ": cut runs counted") true (e.E.ex_cut_runs > 0))
    [
      ("sequential", E.run ~config:cfg S.three_two.make);
      ("parallel", E.run_parallel ~config:cfg ~domains:2 S.three_two.make);
      ("sampling", E.sample ~config:cfg ~runs:5 ~seed:7 S.three_two.make);
    ]

(* -------------------------------------------------------------------- *)

let schedule = Alcotest.testable Check.Schedule.pp Check.Schedule.equal

let test_schedule_roundtrip () =
  let s = Check.Schedule.of_list [ 0; 0; 1; 2; 0; 17; 3 ] in
  (match Check.Schedule.of_string (Check.Schedule.to_string s) with
  | Ok s' -> check schedule "roundtrip" s s'
  | Error e -> Alcotest.fail e);
  (match
     Check.Schedule.of_string
       "\n# pthreads-explore schedule v1\n0 1 2\n# trailing comment\n3 4\n"
   with
  | Ok s' -> check schedule "comments ignored" (Check.Schedule.of_list [ 0; 1; 2; 3; 4 ]) s'
  | Error e -> Alcotest.fail e);
  match Check.Schedule.of_string "0 1 2\n" with
  | Ok _ -> Alcotest.fail "missing header must be rejected"
  | Error _ -> ()

let suite =
  [
    ( "explore",
      [
        tc "deadlock found, shrunk, replayed" test_deadlock_found_and_replayed;
        tc "ordered locking exhaustively safe" test_ordered_safe;
        tc "3 threads / 2 mutexes exhausted" test_three_two_exhaustive;
        tc "racy counter: lost update found" test_racy_counter_found;
        tc "lost wakeup found" test_lost_wakeup_found;
        tc "lost wakeup fixed: safe" test_lost_wakeup_fixed_safe;
        tc "Table 4 stack-pop violation found" test_table4_stack_pop_found;
        tc "Table 4 recompute: safe" test_table4_recompute_safe;
        tc "nested ceilings: safe" test_ceiling_nested_safe;
        tc "cancel in Cond.wait: cleanup never leaks" test_cancel_cond_wait_clean;
        tc "cancel in Cond.wait: leak found" test_cancel_cond_wait_leak_found;
        tc "DPOR beats full enumeration" test_dpor_reduction;
        tc "random sampling + replay" test_sampling_finds_deadlock;
        tc "schedule text roundtrip" test_schedule_roundtrip;
        tc "parallel DPOR deterministic across domains"
          test_parallel_deterministic;
        tc "parallel agrees with sequential verdicts"
          test_parallel_agrees_with_sequential;
        tc "parallel rejects domains < 1" test_parallel_rejects_bad_domains;
        tc "reduction reaches every final state (differential)"
          test_parallel_covers_all_final_states;
        tc "run budget exhaustion is structured" test_budget_exhaustion_reported;
        tc "step budget cuts are counted" test_step_budget_cut_reported;
      ] );
  ]
