(* The schedule explorer (lib/check): systematic interleaving coverage with
   DPOR pruning, minimal replayable counterexamples, and the paper's bug
   catalogue (lock-order deadlock, lost wakeup, Table 4 protocol mixing,
   Table 1 cancellation during Cond.wait) reproduced as *found* bugs. *)

open Tu
open Pthreads
module E = Check.Explore
module S = Check.Scenarios

let found (r : E.result) =
  match r.failure with
  | Some f -> f
  | None -> Alcotest.fail "expected the explorer to find a failure"

let safe name (r : E.result) =
  (match r.failure with
  | Some f ->
      Alcotest.failf "%s should be safe, found %s" name
        (E.failure_kind_to_string f.kind)
  | None -> ());
  check bool (name ^ " explored exhaustively") true r.stats.complete

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

(* -------------------------------------------------------------------- *)

let test_deadlock_found_and_replayed () =
  let f = found (E.run S.deadlock_ab.make) in
  (match f.kind with
  | E.Deadlocked _ -> ()
  | k -> Alcotest.failf "expected a deadlock, got %s" (E.failure_kind_to_string k));
  check bool "shrunk is no longer than the first witness" true
    (Check.Schedule.length f.schedule
    <= Check.Schedule.length f.first_schedule);
  (* determinism: two replays of the minimal schedule agree exactly *)
  let r1 = Check.Replay.run S.deadlock_ab.make f.schedule in
  let r2 = Check.Replay.run S.deadlock_ab.make f.schedule in
  (match (r1.outcome, r2.outcome) with
  | Some (E.Deadlocked a), Some (E.Deadlocked b) ->
      check string "same deadlock both times" a b
  | _ -> Alcotest.fail "replay did not reproduce the deadlock");
  check int "same step count" r1.steps r2.steps;
  check bool "no divergence" true (r1.diverged_at = None && r2.diverged_at = None)

let test_ordered_safe () = safe "ordered-ab" (E.run S.ordered_ab.make)

let test_three_two_exhaustive () =
  (* the acceptance program: 3 threads over 2 mutexes, exhausted with DPOR *)
  let r = E.run S.three_two.make in
  safe "three-two" r;
  check bool "DPOR actually pruned" true (r.stats.pruned > 0)

let test_racy_counter_found () =
  let f = found (E.run S.racy_counter.make) in
  match f.kind with
  | E.Bad_exit 1 -> ()
  | k -> Alcotest.failf "expected lost update (exit 1), got %s"
           (E.failure_kind_to_string k)

let test_lost_wakeup_found () =
  let f = found (E.run (S.lost_wakeup ~fixed:false).make) in
  match f.kind with
  | E.Deadlocked msg ->
      check bool "consumer stuck on the condition" true
        (contains msg "blocked-on-cond")
  | k -> Alcotest.failf "expected a lost-wakeup deadlock, got %s"
           (E.failure_kind_to_string k)

let test_lost_wakeup_fixed_safe () =
  safe "lost-wakeup-fixed" (E.run (S.lost_wakeup ~fixed:true).make)

let test_table4_stack_pop_found () =
  (* the paper's Table 4 divergence, rediscovered as a counterexample *)
  let f = found (E.run (S.table4 ~mode:Types.Stack_pop).make) in
  match f.kind with
  | E.Invariant_violated msg ->
      check bool "names the inheritance discipline" true
        (contains msg "inheritance")
  | k -> Alcotest.failf "expected an invariant violation, got %s"
           (E.failure_kind_to_string k)

let test_table4_recompute_safe () =
  safe "table4-recompute" (E.run (S.table4 ~mode:Types.Recompute).make)

let test_ceiling_nested_safe () =
  safe "ceiling-nested" (E.run S.ceiling_nested.make)

(* Satellite: exhaustive cancellation x Cond.wait (paper Table 1).  With a
   cleanup handler no schedule leaks the mutex; without one, the canceled
   thread keeps the reacquired mutex and the explorer pins the leak. *)
let test_cancel_cond_wait_clean () =
  safe "cancel-cond-wait" (E.run (S.cancel_cond_wait ~with_cleanup:true).make)

let test_cancel_cond_wait_leak_found () =
  let f = found (E.run (S.cancel_cond_wait ~with_cleanup:false).make) in
  match f.kind with
  | E.Invariant_violated msg ->
      check bool "reports the leaked mutex" true
        (contains msg "leaked" || contains msg "still locked")
  | k -> Alcotest.failf "expected a leaked-mutex violation, got %s"
           (E.failure_kind_to_string k)

(* -------------------------------------------------------------------- *)

(* Exact reduction measurement on a 2-thread program: full enumeration
   (DPOR and sleep sets off) visits every interleaving; DPOR must agree on
   the verdict while running strictly fewer schedules. *)
let test_dpor_reduction () =
  let full =
    E.run ~config:{ E.default_config with dpor = false; sleep_sets = false }
      S.micro_two.make
  in
  let dpor = E.run S.micro_two.make in
  safe "micro (full enumeration)" full;
  safe "micro (DPOR)" dpor;
  check bool "full enumeration is not trivial" true (full.stats.runs > 10);
  check bool
    (Printf.sprintf "DPOR explores fewer schedules (%d < %d)" dpor.stats.runs
       full.stats.runs)
    true
    (dpor.stats.runs < full.stats.runs)

let test_sampling_finds_deadlock () =
  let r = E.sample ~runs:200 ~seed:7 S.deadlock_ab.make in
  let f = found r in
  check bool "sampling is never exhaustive" false r.stats.complete;
  let rep = Check.Replay.run S.deadlock_ab.make f.schedule in
  match rep.outcome with
  | Some (E.Deadlocked _) -> check bool "replay faithful" true (rep.diverged_at = None)
  | _ -> Alcotest.fail "sampled counterexample did not replay"

(* -------------------------------------------------------------------- *)

let schedule = Alcotest.testable Check.Schedule.pp Check.Schedule.equal

let test_schedule_roundtrip () =
  let s = Check.Schedule.of_list [ 0; 0; 1; 2; 0; 17; 3 ] in
  (match Check.Schedule.of_string (Check.Schedule.to_string s) with
  | Ok s' -> check schedule "roundtrip" s s'
  | Error e -> Alcotest.fail e);
  (match
     Check.Schedule.of_string
       "\n# pthreads-explore schedule v1\n0 1 2\n# trailing comment\n3 4\n"
   with
  | Ok s' -> check schedule "comments ignored" (Check.Schedule.of_list [ 0; 1; 2; 3; 4 ]) s'
  | Error e -> Alcotest.fail e);
  match Check.Schedule.of_string "0 1 2\n" with
  | Ok _ -> Alcotest.fail "missing header must be rejected"
  | Error _ -> ()

let suite =
  [
    ( "explore",
      [
        tc "deadlock found, shrunk, replayed" test_deadlock_found_and_replayed;
        tc "ordered locking exhaustively safe" test_ordered_safe;
        tc "3 threads / 2 mutexes exhausted" test_three_two_exhaustive;
        tc "racy counter: lost update found" test_racy_counter_found;
        tc "lost wakeup found" test_lost_wakeup_found;
        tc "lost wakeup fixed: safe" test_lost_wakeup_fixed_safe;
        tc "Table 4 stack-pop violation found" test_table4_stack_pop_found;
        tc "Table 4 recompute: safe" test_table4_recompute_safe;
        tc "nested ceilings: safe" test_ceiling_nested_safe;
        tc "cancel in Cond.wait: cleanup never leaks" test_cancel_cond_wait_clean;
        tc "cancel in Cond.wait: leak found" test_cancel_cond_wait_leak_found;
        tc "DPOR beats full enumeration" test_dpor_reduction;
        tc "random sampling + replay" test_sampling_finds_deadlock;
        tc "schedule text roundtrip" test_schedule_roundtrip;
      ] );
  ]
