(* Backend conformance: the same battery (signals, timers, I/O completion
   ordering, sbrk accounting, SIGIO collapse) run against both backends —
   the deterministic virtual kernel and the real Unix event loop — plus an
   echo-server smoke whose handler source is shared between the two.

   The point of the functor: both backends drive one [Vm.Unix_kernel]
   state machine, and these tests pin the behaviours that must not drift
   apart (BSD one-pending-slot signal collapse above all). *)

open Tu
open Pthreads
module Unix_kernel = Vm.Unix_kernel
module Backend = Vm.Backend

module type BACKEND = sig
  val name : string
  val make : unit -> Pthreads.backend

  val realtime : bool
  (** true = clock follows the host; timing assertions get slack *)
end

(* ------------------------------------------------------------------ *)
(* The echo server: ONE handler and driver for both backends           *)
(* ------------------------------------------------------------------ *)

let echo_handler proc conn =
  let buf = Bytes.create 256 in
  let rec loop () =
    let n = Net.read proc conn buf ~pos:0 ~len:(Bytes.length buf) in
    if n > 0 then begin
      Net.write_all proc conn buf ~pos:0 ~len:n;
      loop ()
    end
  in
  loop ();
  Net.close proc conn

let read_exactly proc conn buf =
  let rec fill pos =
    if pos < Bytes.length buf then begin
      let n = Net.read proc conn buf ~pos ~len:(Bytes.length buf - pos) in
      if n = 0 then failwith "echo: unexpected EOF";
      fill (pos + n)
    end
  in
  fill 0

(* [n_clients] concurrent connections, [msgs] round trips each; returns
   the number of verified echoes. *)
let echo_roundtrips backend ~n_clients ~msgs =
  let ok = ref 0 in
  let status, _stats =
    Pthreads.run ~backend (fun proc ->
        let lst = Net.listen proc ~port:0 () in
        let port = Net.port proc lst in
        let server =
          Pthread.create_unit proc (fun () ->
              for _ = 1 to n_clients do
                let conn = Net.accept proc lst in
                ignore
                  (Pthread.create_unit proc (fun () -> echo_handler proc conn))
              done)
        in
        let clients =
          List.init n_clients (fun i ->
              Pthread.create_unit proc (fun () ->
                  let conn = Net.connect proc ~port in
                  for m = 1 to msgs do
                    let payload =
                      Bytes.of_string (Printf.sprintf "client-%d message-%d" i m)
                    in
                    Net.write_all proc conn payload ~pos:0
                      ~len:(Bytes.length payload);
                    let back = Bytes.create (Bytes.length payload) in
                    read_exactly proc conn back;
                    if Bytes.equal back payload then incr ok
                  done;
                  Net.close proc conn))
        in
        List.iter (fun t -> ignore (Pthread.join proc t)) clients;
        ignore (Pthread.join proc server);
        Net.close_listener proc lst;
        0)
  in
  (match status with
  | Some (Types.Exited 0) -> ()
  | _ -> Alcotest.fail "echo process did not exit cleanly");
  !ok

(* ------------------------------------------------------------------ *)
(* The battery                                                         *)
(* ------------------------------------------------------------------ *)

module Battery (B : BACKEND) = struct
  let run_b f =
    let status, stats = Pthreads.run ~backend:(B.make ()) f in
    (match status with
    | Some (Types.Exited 0) -> ()
    | _ -> Alcotest.fail (B.name ^ ": main did not exit 0"));
    stats

  (* Signals: a handler installed through the thread-level API fires for
     both a directed kill and an external process-level signal. *)
  let test_signals () =
    let hits = ref 0 in
    let stats =
      run_b (fun proc ->
          Signal_api.set_action proc Sigset.sigusr1
            (Types.Sig_handler
               {
                 h_mask = Sigset.empty;
                 h_fn = (fun ~signo:_ ~code:_ -> incr hits);
               });
          Signal_api.kill proc (Pthread.self proc) Sigset.sigusr1;
          Pthread.checkpoint proc;
          Signal_api.send_to_process proc Sigset.sigusr1;
          Pthread.checkpoint proc;
          0)
    in
    check int (B.name ^ ": handler runs") 2 !hits;
    check bool (B.name ^ ": external signal went through the kernel") true
      (stats.signals_posted >= 1)

  (* Timers: a delay armed on the shared timing wheel wakes no earlier
     than requested (and, on the virtual backend, with no overshoot beyond
     the simulated bookkeeping). *)
  let test_timer () =
    let dt = ref 0 in
    ignore
      (run_b (fun proc ->
           let t0 = Pthread.now proc in
           Pthread.delay proc ~ns:5_000_000;
           dt := Pthread.now proc - t0;
           0));
    check bool
      (Printf.sprintf "%s: woke after the deadline (%.2f ms)" B.name
         (float_of_int !dt /. 1e6))
      true (!dt >= 5_000_000);
    let ceiling = if B.realtime then 5_000_000_000 else 10_000_000 in
    check bool
      (Printf.sprintf "%s: no wild overshoot (%.2f ms)" B.name
         (float_of_int !dt /. 1e6))
      true (!dt < ceiling)

  (* I/O completion ordering: three async reads with distinct latencies
     complete in latency order regardless of submission order. *)
  let test_io_order () =
    let order = ref [] in
    ignore
      (run_b (fun proc ->
           let reader tag latency_ns =
             Pthread.create_unit proc (fun () ->
                 Signal_api.aio_read proc ~latency_ns;
                 order := tag :: !order)
           in
           let a = reader "slow" 6_000_000 in
           let b = reader "fast" 2_000_000 in
           let c = reader "mid" 4_000_000 in
           List.iter (fun t -> ignore (Pthread.join proc t)) [ a; b; c ];
           0));
    check (Alcotest.list string)
      (B.name ^ ": completions in latency order")
      [ "fast"; "mid"; "slow" ] (List.rev !order)

  (* sbrk accounting: heap growth is a counted kernel trap on either
     backend. *)
  let test_sbrk () =
    let b = B.make () in
    let k = b.Backend.kernel in
    let count name =
      Option.value ~default:0 (List.assoc_opt name (Unix_kernel.trap_counts k))
    in
    let before = count "sbrk" and traps_before = Unix_kernel.trap_count k in
    Unix_kernel.sbrk k 4096;
    Unix_kernel.sbrk k 4096;
    check int (B.name ^ ": sbrk trap counted") (before + 2) (count "sbrk");
    check bool
      (B.name ^ ": total traps grew")
      true
      (Unix_kernel.trap_count k >= traps_before + 2);
    b.Backend.shutdown ()

  (* The satellite regression: BSD keeps ONE pending slot per signal, so
     N completions collapse into a single SIGIO delivery — but the
     completion counts recorded behind the doorbell never collapse.  Both
     backends share [post_io_completion], so this pins them together. *)
  let test_sigio_collapse () =
    let b = B.make () in
    let k = b.Backend.kernel in
    let delivered = ref 0 in
    Unix_kernel.sigaction k Sigset.sigio
      (Unix_kernel.Catch
         {
           mask = Sigset.empty;
           fn = (fun ~signo:_ ~code:_ ~origin:_ -> incr delivered);
         });
    (* mask SIGIO so the doorbell pends while completions pile up *)
    ignore (Unix_kernel.sigsetmask k (Sigset.singleton Sigset.sigio));
    let lost0 = Unix_kernel.signals_lost k in
    Unix_kernel.post_io_completion k ~requester:7;
    Unix_kernel.post_io_completion k ~requester:7;
    Unix_kernel.post_io_completion k ~requester:9;
    check int (B.name ^ ": one pending slot, two collapsed") 2
      (Unix_kernel.signals_lost k - lost0);
    ignore (Unix_kernel.sigsetmask k Sigset.empty);
    while Unix_kernel.deliver_pending k do
      ()
    done;
    check int (B.name ^ ": exactly one SIGIO delivered") 1 !delivered;
    (* the aio_error-style poll still sees every completion *)
    check bool
      (B.name ^ ": completion counts survive the collapse")
      true
      (Unix_kernel.take_io_completion k ~requester:7
      && Unix_kernel.take_io_completion k ~requester:7
      && (not (Unix_kernel.take_io_completion k ~requester:7))
      && Unix_kernel.take_io_completion k ~requester:9
      && not (Unix_kernel.take_io_completion k ~requester:9));
    b.Backend.shutdown ()

  let test_echo () =
    let n_clients = 4 and msgs = 3 in
    let ok = echo_roundtrips (B.make ()) ~n_clients ~msgs in
    check int (B.name ^ ": every echo verified") (n_clients * msgs) ok

  let suite =
    [
      tc (B.name ^ " backend: signals") test_signals;
      tc (B.name ^ " backend: timers") test_timer;
      tc (B.name ^ " backend: io completion order") test_io_order;
      tc (B.name ^ " backend: sbrk accounting") test_sbrk;
      tc (B.name ^ " backend: SIGIO collapse (one pending slot)")
        test_sigio_collapse;
      tc (B.name ^ " backend: echo server smoke") test_echo;
    ]
end

module Vm_battery = Battery (struct
  let name = "vm"
  let make () = Pthreads.vm_backend ()
  let realtime = false
end)

module Unix_battery = Battery (struct
  let name = "unix"
  let make () = Pthreads.unix_backend ()
  let realtime = true
end)

(* ------------------------------------------------------------------ *)
(* Backend-specific extras                                             *)
(* ------------------------------------------------------------------ *)

(* The virtual path to the same collapse: simultaneous simulated
   completions surfaced by one [check_events] share a single doorbell. *)
let test_vm_simultaneous_completion_collapse () =
  let b = Pthreads.vm_backend () in
  let k = b.Backend.kernel in
  ignore (Unix_kernel.sigsetmask k (Sigset.singleton Sigset.sigio));
  let lost0 = Unix_kernel.signals_lost k in
  Unix_kernel.submit_io k ~latency_ns:1_000 ~requester:1;
  Unix_kernel.submit_io k ~latency_ns:1_000 ~requester:2;
  Unix_kernel.submit_io k ~latency_ns:1_000 ~requester:3;
  Unix_kernel.advance k 1_000;
  Unix_kernel.check_events k;
  check int "three simultaneous completions, two signals collapsed" 2
    (Unix_kernel.signals_lost k - lost0);
  check bool "every completion still recorded" true
    (Unix_kernel.take_io_completion k ~requester:1
    && Unix_kernel.take_io_completion k ~requester:2
    && Unix_kernel.take_io_completion k ~requester:3)

(* Virtual-backend determinism: identical seeds give identical virtual
   durations and switch counts for the concurrent echo scenario. *)
let test_vm_echo_deterministic () =
  let run_once () =
    let ns = ref 0 in
    let backend = Pthreads.vm_backend () in
    let ok = echo_roundtrips backend ~n_clients:3 ~msgs:2 in
    ns := Unix_kernel.now backend.Backend.kernel;
    (ok, !ns)
  in
  let a = run_once () and b = run_once () in
  check bool "two virtual runs bit-identical" true (a = b)

(* Unix backend: a real host signal (SIGUSR1 via kill(2)) is forwarded
   into the simulated process and delivered through the same universal
   handler as everything else. *)
let test_unix_host_signal_forwarding () =
  let hits = ref 0 in
  let status, _ =
    Pthreads.run ~backend:(Pthreads.unix_backend ()) (fun proc ->
        Signal_api.set_action proc Sigset.sigusr1
          (Types.Sig_handler
             {
               h_mask = Sigset.empty;
               h_fn = (fun ~signo:_ ~code:_ -> incr hits);
             });
        Unix.kill (Unix.getpid ()) Sys.sigusr1;
        (* the forwarded signal is imported by the backend pump at the
           next checkpoints; poll until it lands *)
        let tries = ref 0 in
        while !hits = 0 && !tries < 1_000 do
          incr tries;
          Pthread.yield proc
        done;
        0)
  in
  (match status with
  | Some (Types.Exited 0) -> ()
  | _ -> Alcotest.fail "forwarding process did not exit cleanly");
  check int "host SIGUSR1 forwarded and handled" 1 !hits

let suite =
  [
    ( "backend",
      Vm_battery.suite @ Unix_battery.suite
      @ [
          tc "vm: simultaneous completions collapse (doc regression)"
            test_vm_simultaneous_completion_collapse;
          tc "vm: concurrent echo run is deterministic"
            test_vm_echo_deterministic;
          tc "unix: host signal forwarding" test_unix_host_signal_forwarding;
        ] );
  ]
