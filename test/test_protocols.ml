(* Priority-inversion protocols: Figure 5, Table 3 properties, Table 4
   protocol mixing. *)

open Tu
open Pthreads

(* The Figure 5 workload: P1 (low) locks the mutex and computes; P3 (high)
   arrives, tries to lock; P2 (medium) arrives and computes.  Returns the
   order in which the three finish their work. *)
let figure5 ?(ceiling_mode = Types.Stack_pop) protocol =
  let finish = ref [] in
  ignore
    (run_main ~ceiling_mode (fun proc ->
         let m =
           match protocol with
           | `None -> Mutex.create proc ~name:"m" ()
           | `Inherit -> Mutex.create proc ~name:"m" ~protocol:Types.Inherit_protocol ()
           | `Ceiling ->
               Mutex.create proc ~name:"m" ~protocol:Types.Ceiling_protocol
                 ~ceiling:20 ()
         in
         let mk name prio body =
           Pthread.create_unit proc
             ~attr:(Attr.with_prio prio (Attr.with_name name Attr.default))
             (fun () ->
               body ();
               finish := name :: !finish)
         in
         let p1 =
           mk "P1" 5 (fun () ->
               Mutex.lock proc m;
               Pthread.busy proc ~ns:1_000_000;
               Mutex.unlock proc m;
               Pthread.busy proc ~ns:200_000)
         in
         Pthread.delay proc ~ns:300_000;
         let p3 =
           mk "P3" 20 (fun () ->
               Pthread.busy proc ~ns:100_000;
               Mutex.lock proc m;
               Pthread.busy proc ~ns:300_000;
               Mutex.unlock proc m)
         in
         let p2 = mk "P2" 10 (fun () -> Pthread.busy proc ~ns:2_000_000) in
         List.iter (fun t -> ignore (Pthread.join proc t)) [ p1; p3; p2 ];
         0));
  List.rev !finish

let test_fig5a_inversion_without_protocol () =
  check (Alcotest.list string) "medium finishes before high (inversion)"
    [ "P2"; "P3"; "P1" ] (figure5 `None)

let test_fig5b_inheritance_avoids_inversion () =
  check (Alcotest.list string) "high finishes first" [ "P3"; "P2"; "P1" ]
    (figure5 `Inherit)

let test_fig5c_ceiling_avoids_inversion () =
  check (Alcotest.list string) "high finishes first" [ "P3"; "P2"; "P1" ]
    (figure5 `Ceiling)

let test_inheritance_boost_visible () =
  ignore
    (run_main (fun proc ->
         let m = Mutex.create proc ~protocol:Types.Inherit_protocol () in
         let lo =
           Pthread.create_unit proc
             ~attr:(Attr.with_prio 3 Attr.default)
             (fun () ->
               Mutex.lock proc m;
               Pthread.delay proc ~ns:500_000;
               Mutex.unlock proc m)
         in
         Pthread.delay proc ~ns:50_000;
         check int "low priority before contention" 3
           (Pthread.get_priority proc lo);
         let hi =
           Pthread.create_unit proc
             ~attr:(Attr.with_prio 22 Attr.default)
             (fun () ->
               Mutex.lock proc m;
               Mutex.unlock proc m)
         in
         Pthread.delay proc ~ns:50_000;
         check int "owner boosted to contender's priority" 22
           (Pthread.get_priority proc lo);
         ignore (Pthread.join proc hi);
         check int "boost dropped on unlock" 3 (Pthread.get_priority proc lo);
         ignore (Pthread.join proc lo);
         0));
  ()

let test_inheritance_transitive_chain () =
  (* A blocks on m2 held by B which blocks on m1 held by C: C must inherit
     A's priority through the chain. *)
  ignore
    (run_main (fun proc ->
         let m1 = Mutex.create proc ~name:"m1" ~protocol:Types.Inherit_protocol () in
         let m2 = Mutex.create proc ~name:"m2" ~protocol:Types.Inherit_protocol () in
         let c =
           Pthread.create_unit proc
             ~attr:(Attr.with_prio 2 (Attr.with_name "C" Attr.default))
             (fun () ->
               Mutex.lock proc m1;
               Pthread.delay proc ~ns:5_000_000;
               Mutex.unlock proc m1)
         in
         Pthread.delay proc ~ns:50_000;
         let b =
           Pthread.create_unit proc
             ~attr:(Attr.with_prio 4 (Attr.with_name "B" Attr.default))
             (fun () ->
               Mutex.lock proc m2;
               Mutex.lock proc m1;
               Mutex.unlock proc m1;
               Mutex.unlock proc m2)
         in
         Pthread.delay proc ~ns:50_000;
         let a =
           Pthread.create_unit proc
             ~attr:(Attr.with_prio 25 (Attr.with_name "A" Attr.default))
             (fun () ->
               Mutex.lock proc m2;
               Mutex.unlock proc m2)
         in
         Pthread.delay proc ~ns:50_000;
         check int "B inherits A's priority" 25 (Pthread.get_priority proc b);
         check int "C inherits through the chain" 25 (Pthread.get_priority proc c);
         List.iter (fun t -> ignore (Pthread.join proc t)) [ a; b; c ];
         0));
  ()

let test_inheritance_unlock_recomputes_from_remaining () =
  (* Holding two contended mutexes: unlocking one lowers the boost only to
     the highest remaining contender (the linear search of Table 3).  Main
     runs at top priority so it can observe the boosts as they happen. *)
  ignore
    (run_main ~main_prio:30 (fun proc ->
         let m1 = Mutex.create proc ~protocol:Types.Inherit_protocol () in
         let m2 = Mutex.create proc ~protocol:Types.Inherit_protocol () in
         let owner =
           Pthread.create_unit proc
             ~attr:(Attr.with_prio 2 Attr.default)
             (fun () ->
               Mutex.lock proc m1;
               Mutex.lock proc m2;
               Pthread.delay proc ~ns:2_000_000;
               Mutex.unlock proc m2;
               (* here: still holding m1 with a prio-15 contender *)
               Pthread.busy proc ~ns:2_000_000;
               Mutex.unlock proc m1)
         in
         Pthread.delay proc ~ns:100_000;
         ignore
           (Pthread.create_unit proc
              ~attr:(Attr.with_prio 15 Attr.default)
              (fun () ->
                Mutex.lock proc m1;
                Mutex.unlock proc m1));
         ignore
           (Pthread.create_unit proc
              ~attr:(Attr.with_prio 25 Attr.default)
              (fun () ->
                Mutex.lock proc m2;
                Mutex.unlock proc m2));
         Pthread.delay proc ~ns:200_000;
         check int "boosted to max contender" 25 (Pthread.get_priority proc owner);
         Pthread.delay proc ~ns:2_500_000;
         (* owner has released m2 by now and is computing while holding m1 *)
         check int "lowered to remaining contender" 15
           (Pthread.get_priority proc owner);
         ignore (Pthread.join proc owner);
         0));
  ()

let test_ceiling_boost_at_lock () =
  ignore
    (run_main ~main_prio:4 (fun proc ->
         let m =
           Mutex.create proc ~protocol:Types.Ceiling_protocol ~ceiling:18 ()
         in
         check int "before" 4 (Pthread.get_priority proc (Pthread.self proc));
         Mutex.lock proc m;
         check int "boosted to ceiling at lock" 18
           (Pthread.get_priority proc (Pthread.self proc));
         Mutex.unlock proc m;
         check int "restored at unlock" 4
           (Pthread.get_priority proc (Pthread.self proc));
         0));
  ()

let test_ceiling_nested_lifo () =
  ignore
    (run_main ~main_prio:2 (fun proc ->
         let ma = Mutex.create proc ~protocol:Types.Ceiling_protocol ~ceiling:10 () in
         let mb = Mutex.create proc ~protocol:Types.Ceiling_protocol ~ceiling:20 () in
         let me = Pthread.self proc in
         Mutex.lock proc ma;
         check int "ceiling a" 10 (Pthread.get_priority proc me);
         Mutex.lock proc mb;
         check int "ceiling b" 20 (Pthread.get_priority proc me);
         Mutex.unlock proc mb;
         check int "back to a's ceiling" 10 (Pthread.get_priority proc me);
         Mutex.unlock proc ma;
         check int "base" 2 (Pthread.get_priority proc me);
         0));
  ()

let test_ceiling_prevents_preemption_of_locker () =
  (* SRP emulation: while P1 holds a ceiling-20 mutex, a priority-15 thread
     that becomes ready cannot preempt it. *)
  ignore
    (run_main (fun proc ->
         let m = Mutex.create proc ~protocol:Types.Ceiling_protocol ~ceiling:20 () in
         let order = ref [] in
         let p1 =
           Pthread.create_unit proc
             ~attr:(Attr.with_prio 3 Attr.default)
             (fun () ->
               Mutex.lock proc m;
               Pthread.busy proc ~ns:200_000;
               order := "p1-cs-done" :: !order;
               Mutex.unlock proc m)
         in
         Pthread.delay proc ~ns:50_000;
         let mid =
           Pthread.create_unit proc
             ~attr:(Attr.with_prio 15 Attr.default)
             (fun () -> order := "mid" :: !order)
         in
         ignore (Pthread.join proc p1);
         ignore (Pthread.join proc mid);
         check (Alcotest.list string) "critical section ran to completion"
           [ "p1-cs-done"; "mid" ] (List.rev !order);
         0));
  ()

let test_ceiling_requires_ceiling () =
  ignore
    (run_main (fun proc ->
         (try
            ignore (Mutex.create proc ~protocol:Types.Ceiling_protocol ());
            Alcotest.fail "missing ceiling must raise"
          with Types.Error (Errno.EINVAL, _) -> ());
         0));
  ()

(* Table 4: the exact step-by-step priority divergence when inheritance and
   ceiling mutexes nest. *)
let table4 mode =
  let log = ref [] in
  ignore
    (run_main ~ceiling_mode:mode ~main_prio:0 (fun proc ->
         let inht = Mutex.create proc ~name:"inht" ~protocol:Types.Inherit_protocol () in
         let ceil =
           Mutex.create proc ~name:"ceil" ~protocol:Types.Ceiling_protocol
             ~ceiling:1 ()
         in
         let snap step =
           log := (step, Pthread.get_priority proc (Pthread.self proc)) :: !log
         in
         Mutex.lock proc inht;
         snap 1;
         Mutex.lock proc ceil;
         snap 2;
         let hi =
           Pthread.create_unit proc
             ~attr:(Attr.with_prio 2 Attr.default)
             (fun () ->
               Mutex.lock proc inht;
               Mutex.unlock proc inht)
         in
         Pthread.yield proc;
         snap 3;
         Mutex.unlock proc ceil;
         snap 4;
         Mutex.unlock proc inht;
         snap 5;
         ignore (Pthread.join proc hi);
         0));
  List.rev !log

let test_table4_stack_pop_diverges () =
  (* column Pc: 0 1 2 0 0 — the stack pop loses the inherited boost *)
  check
    (Alcotest.list (Alcotest.pair int int))
    "Pc column" [ (1, 0); (2, 1); (3, 2); (4, 0); (5, 0) ]
    (table4 Types.Stack_pop)

let test_table4_recompute_preserves_boost () =
  (* column Pi: 0 1 2 2 0 — the linear search keeps the boost until the
     inheritance mutex is released *)
  check
    (Alcotest.list (Alcotest.pair int int))
    "Pi column" [ (1, 0); (2, 1); (3, 2); (4, 2); (5, 0) ]
    (table4 Types.Recompute)

(* Table 3 "bound on inversion": with several lower-priority threads
   holding critical sections, the ceiling protocol's worst-case blocking of
   the high thread (one critical section) beats inheritance (sum of
   critical sections is possible under nesting; here we check the simple
   dominance: ceiling blocking <= inheritance blocking). *)
let blocking_time protocol =
  let blocked_ns = ref 0 in
  ignore
    (run_main (fun proc ->
         let mk_mutex name =
           match protocol with
           | `Inherit -> Mutex.create proc ~name ~protocol:Types.Inherit_protocol ()
           | `Ceiling ->
               Mutex.create proc ~name ~protocol:Types.Ceiling_protocol ~ceiling:20 ()
         in
         let m1 = mk_mutex "m1" and m2 = mk_mutex "m2" in
         let low name m =
           Pthread.create_unit proc
             ~attr:(Attr.with_prio 3 (Attr.with_name name Attr.default))
             (fun () ->
               Mutex.lock proc m;
               Pthread.busy proc ~ns:400_000;
               Mutex.unlock proc m)
         in
         let l1 = low "L1" m1 in
         Pthread.delay proc ~ns:20_000;
         let l2 = low "L2" m2 in
         Pthread.delay proc ~ns:20_000;
         let hi =
           Pthread.create_unit proc
             ~attr:(Attr.with_prio 20 Attr.default)
             (fun () ->
               let t0 = Pthread.now proc in
               Mutex.lock proc m1;
               Mutex.lock proc m2;
               blocked_ns := Pthread.now proc - t0;
               Mutex.unlock proc m2;
               Mutex.unlock proc m1)
         in
         List.iter (fun t -> ignore (Pthread.join proc t)) [ l1; l2; hi ];
         0));
  !blocked_ns

let test_table3_ceiling_bound_tighter () =
  let inh = blocking_time `Inherit in
  let ceil = blocking_time `Ceiling in
  check bool
    (Printf.sprintf "ceiling (%d ns) <= inheritance (%d ns)" ceil inh)
    true (ceil <= inh)

let suite =
  [
    ( "protocols",
      [
        tc "fig5a: inversion (none)" test_fig5a_inversion_without_protocol;
        tc "fig5b: inheritance" test_fig5b_inheritance_avoids_inversion;
        tc "fig5c: ceiling" test_fig5c_ceiling_avoids_inversion;
        tc "inheritance boost visible" test_inheritance_boost_visible;
        tc "inheritance transitive chain" test_inheritance_transitive_chain;
        tc "unlock recomputes" test_inheritance_unlock_recomputes_from_remaining;
        tc "ceiling boost at lock" test_ceiling_boost_at_lock;
        tc "ceiling nested LIFO" test_ceiling_nested_lifo;
        tc "ceiling blocks preemption" test_ceiling_prevents_preemption_of_locker;
        tc "ceiling requires ceiling" test_ceiling_requires_ceiling;
        tc "table 4: stack pop (Pc)" test_table4_stack_pop_diverges;
        tc "table 4: recompute (Pi)" test_table4_recompute_preserves_boost;
        tc "table 3: ceiling bound tighter" test_table3_ceiling_bound_tighter;
      ] );
  ]
