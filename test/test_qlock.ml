(* The MCS queue lock guarding the cross-shard paths (Qlock): mutual
   exclusion and exact counting under real multi-domain contention, FIFO
   handoff to an already-queued waiter, and release-on-exception.  These
   are host-parallel tests — the only suite besides test_parallel that
   spawns real OCaml domains. *)

open Tu

module Qlock = Pthreads.Qlock

(* -------------------------------------------------------------- *)
(* Single-domain basics                                            *)
(* -------------------------------------------------------------- *)

let test_uncontended () =
  let l = Qlock.create ~name:"t" () in
  check string "name" "t" (Qlock.name l);
  let tok = Qlock.acquire l in
  Qlock.release l tok;
  let tok2 = Qlock.acquire l in
  Qlock.release l tok2;
  check int "acquisitions" 2 (Qlock.acquisition_count l);
  check int "no contention alone" 0 (Qlock.contended_count l)

let test_with_lock_value () =
  let l = Qlock.create () in
  check int "returns body value" 41 (Qlock.with_lock l (fun () -> 41));
  (* the lock must be free again *)
  check int "reacquirable" 1 (Qlock.with_lock l (fun () -> 1))

exception Boom

let test_release_on_exception () =
  let l = Qlock.create () in
  (try Qlock.with_lock l (fun () -> raise Boom) with Boom -> ());
  (* if the exception leaked the lock this acquire spins forever *)
  check int "freed by Fun.protect" 7 (Qlock.with_lock l (fun () -> 7))

(* -------------------------------------------------------------- *)
(* Multi-domain contention: exact counts, no lost handoffs         *)
(* -------------------------------------------------------------- *)

(* [workers] domains each do [per] critical sections on one plain (non
   atomic) counter.  Any mutual-exclusion failure loses increments; any
   lost handoff hangs the test.  Runs even on a single-core host (the
   domains time-slice), which is exactly the preemption-in-the-middle
   schedule that flushes out torn handoffs. *)
let test_counter_exact () =
  let l = Qlock.create () in
  let counter = ref 0 in
  let workers = 4 and per = 2_000 in
  let ds =
    List.init workers (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per do
              Qlock.with_lock l (fun () -> incr counter)
            done))
  in
  List.iter Domain.join ds;
  check int "no lost increments" (workers * per) !counter;
  check int "every acquire counted" (workers * per) (Qlock.acquisition_count l)

(* Two domains over the same lock, the holder periodically sleeping
   inside the critical section.  On any host (even one core, where the
   sleep schedules the other domain straight into the held lock) this
   forces real queueing, so the contended/handoff path provably ran —
   and the count still comes out exact. *)
let test_contended_path_runs () =
  let l = Qlock.create () in
  let counter = ref 0 in
  let per = 2_000 in
  let body () =
    for k = 1 to per do
      Qlock.with_lock l (fun () ->
          incr counter;
          if k mod 64 = 0 then Vm.Real_clock.nap ())
    done
  in
  let d = Domain.spawn body in
  body ();
  Domain.join d;
  check int "exact" (2 * per) !counter;
  if Qlock.contended_count l = 0 then
    Alcotest.fail "two domains hammering one lock never contended"

(* FIFO handoff: while the main domain holds the lock, a second domain
   queues behind it (visible in [contended_count]).  Main then writes a
   token and releases; the waiter must observe the token — release
   hands the lock to the queued waiter, it cannot be lost or stolen. *)
let test_handoff_to_queued_waiter () =
  let l = Qlock.create () in
  let token = ref 0 in
  let seen = Atomic.make (-1) in
  let tok = Qlock.acquire l in
  let d =
    Domain.spawn (fun () ->
        Qlock.with_lock l (fun () -> Atomic.set seen !token))
  in
  (* wait until the domain is provably spinning in the queue *)
  while Qlock.contended_count l = 0 do
    Domain.cpu_relax ()
  done;
  token := 99;
  Qlock.release l tok;
  Domain.join d;
  check int "waiter saw the pre-release write" 99 (Atomic.get seen)

(* -------------------------------------------------------------- *)
(* Property: arbitrary schedules of short/long critical sections    *)
(* -------------------------------------------------------------- *)

(* Random per-domain workloads (section lengths and section counts drawn
   from the case) still sum exactly.  Varying section length shifts
   where releases land relative to the successor's linking step, probing
   the CAS-vs-hand_off race in [release]. *)
let prop_random_sections =
  qcheck ~count:10 ~seed_key:"qlock"
    "qlock: random critical sections count exactly"
    QCheck2.Gen.(pair (int_range 1 4) (int_range 50 500))
    (fun (workers, per) ->
      let l = Qlock.create () in
      let counter = ref 0 in
      let ds =
        List.init workers (fun i ->
            Domain.spawn (fun () ->
                for k = 1 to per do
                  Qlock.with_lock l (fun () ->
                      (* odd sections dawdle inside the lock *)
                      if (i + k) land 1 = 0 then
                        for _ = 1 to 50 do
                          ignore (Sys.opaque_identity !counter)
                        done;
                      incr counter)
                done))
      in
      List.iter Domain.join ds;
      !counter = workers * per)

let suite =
  [
    ( "qlock",
      [
        tc "uncontended acquire/release" test_uncontended;
        tc "with_lock returns and frees" test_with_lock_value;
        tc "released on exception" test_release_on_exception;
        tc "4 domains count exactly" test_counter_exact;
        tc "contended path runs" test_contended_path_runs;
        tc "handoff reaches queued waiter" test_handoff_to_queued_waiter;
        prop_random_sections;
      ] );
  ]
