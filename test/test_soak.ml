(* Soak tests: large thread populations, long event chains, heavy churn —
   confirming the structures behave at scale, not just in micro cases. *)

open Tu
open Pthreads

let test_thread_churn () =
  (* waves of creation/join: 500 threads total through a 16-slab pool *)
  ignore
    (run_main (fun proc ->
         let total = ref 0 in
         for _wave = 1 to 50 do
           let ts =
             List.init 10 (fun i ->
                 Pthread.create proc (fun () ->
                     Pthread.busy proc ~ns:1_000;
                     i))
           in
           List.iter
             (fun t ->
               match Pthread.join proc t with
               | Types.Exited v -> total := !total + v
               | _ -> Alcotest.fail "churn thread failed")
             ts
         done;
         check int "all results collected" (50 * 45) !total;
         check int "population returned to one" 1 (Pthread.thread_count proc);
         0));
  ()

let test_many_concurrent_waiters () =
  ignore
    (run_main (fun proc ->
         let m = Mutex.create proc () in
         let c = Cond.create proc () in
         let go = ref false in
         let woken = ref 0 in
         let n = 120 in
         let ts =
           List.init n (fun _ ->
               Pthread.create_unit proc (fun () ->
                   Mutex.lock proc m;
                   while not !go do
                     ignore (Cond.wait proc c m)
                   done;
                   incr woken;
                   Mutex.unlock proc m))
         in
         Pthread.delay proc ~ns:2_000_000;
         check int "all parked" n (Cond.waiter_count c);
         Mutex.lock proc m;
         go := true;
         Cond.broadcast proc c;
         Mutex.unlock proc m;
         List.iter (fun t -> ignore (Pthread.join proc t)) ts;
         check int "all released" n !woken;
         0));
  ()

let test_long_timer_chain () =
  (* hundreds of sequential timed sleeps: the SIGALRM machinery under
     sustained load, with interleaved threads *)
  ignore
    (run_main (fun proc ->
         let hops = ref 0 in
         let ts =
           List.init 4 (fun _ ->
               Pthread.create_unit proc (fun () ->
                   for _ = 1 to 50 do
                     Pthread.delay proc ~ns:10_000;
                     incr hops
                   done))
         in
         List.iter (fun t -> ignore (Pthread.join proc t)) ts;
         check int "every sleep completed" 200 !hops;
         0));
  ()

let test_signal_storm () =
  (* a thousand directed signals against a busy receiver *)
  ignore
    (run_main (fun proc ->
         let hits = ref 0 in
         Signal_api.set_action proc Sigset.sigusr1
           (Types.Sig_handler
              { h_mask = Sigset.empty; h_fn = (fun ~signo:_ ~code:_ -> incr hits) });
         let receiver =
           Pthread.create_unit proc
             ~attr:(Attr.with_prio 3 Attr.default)
             (fun () -> Pthread.busy proc ~ns:5_000_000)
         in
         for _ = 1 to 1000 do
           Signal_api.kill proc receiver Sigset.sigusr1
         done;
         ignore (Pthread.join proc receiver);
         (* internal signals are not lossy: every one runs the handler *)
         check int "all delivered" 1000 !hits;
         0));
  ()

let test_deep_rendezvous_chain () =
  (* a pipeline of 20 tasks, each forwarding through a rendezvous *)
  ignore
    (run_main (fun proc ->
         let g = Tasking.Task_rt.make_group proc () in
         let n = 20 in
         let entries : (int, int) Tasking.Task_rt.entry array =
           Array.init n (fun i ->
               Tasking.Task_rt.entry g ~name:(Printf.sprintf "e%d" i) ())
         in
         let stages =
           List.init (n - 1) (fun i ->
               Tasking.Task_rt.spawn proc (fun () ->
                   Tasking.Task_rt.accept entries.(i) (fun v ->
                       Tasking.Task_rt.call entries.(i + 1) (v + 1))))
         in
         let sink =
           Pthread.create proc (fun () ->
               let result = ref 0 in
               Tasking.Task_rt.accept entries.(n - 1) (fun v ->
                   result := v;
                   v);
               !result)
         in
         Pthread.yield proc;
         ignore (Tasking.Task_rt.call entries.(0) 100);
         List.iter (fun t -> ignore (Pthread.join proc t)) stages;
         (match Pthread.join proc sink with
         | Types.Exited v -> check int "value crossed 20 stages" (100 + n - 1) v
         | _ -> Alcotest.fail "sink failed");
         0));
  ()

let test_machine_many_processes () =
  let m = Machine.create () in
  let sem = Shared.semaphore_create 3 in
  let completed = ref 0 in
  for i = 1 to 10 do
    ignore
      (Machine.spawn m ~name:(Printf.sprintf "p%d" i) (fun proc ->
           for _ = 1 to 5 do
             Shared.sem_wait proc sem;
             Pthread.busy proc ~ns:10_000;
             Shared.sem_post proc sem
           done;
           incr completed;
           0))
  done;
  ignore (Machine.run m);
  check int "ten processes completed" 10 !completed

(* Randomized churn under the perverted random-switch policy, pinned to the
   shared seed table so a failure names its seed. *)
let test_random_churn () =
  let seed = Tu.seed_of "soak" in
  let rng = Vm.Rng.create seed in
  for round = 1 to 8 do
    let run_seed = Vm.Rng.int rng 1_000_000 in
    let nthreads = 4 + Vm.Rng.int rng 12 in
    let v =
      try
        run_main ~perverted:Types.Random_switch ~seed:run_seed (fun proc ->
            let m = Mutex.create proc () in
            let hits = ref 0 in
            let ts =
              List.init nthreads (fun _ ->
                  Pthread.create proc (fun () ->
                      for _ = 1 to 20 do
                        Mutex.lock proc m;
                        incr hits;
                        Mutex.unlock proc m;
                        Pthread.yield proc
                      done;
                      0))
            in
            List.iter (fun t -> ignore (Pthread.join proc t)) ts;
            if !hits = nthreads * 20 then 0 else 1)
      with e ->
        Alcotest.failf "random churn blew up (seed %#x, round %d): %s" seed
          round (Printexc.to_string e)
    in
    if v <> 0 then
      Alcotest.failf "random churn lost updates (seed %#x, round %d)" seed
        round
  done

let suite =
  [
    ( "soak",
      [
        tc "thread churn (500)" test_thread_churn;
        tc "random churn (seeded)" test_random_churn;
        tc "120 cond waiters" test_many_concurrent_waiters;
        tc "timer chain (200 sleeps)" test_long_timer_chain;
        tc "signal storm (1000)" test_signal_storm;
        tc "20-stage rendezvous" test_deep_rendezvous_chain;
        tc "10-process machine" test_machine_many_processes;
      ] );
  ]
