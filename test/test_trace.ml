(* The trace layer itself: recording, rendering, Gantt semantics, and
   shared semaphores / ctime additions. *)

open Tu
module Trace = Vm.Trace
open Pthreads

let mk_trace () =
  let t = Trace.create () in
  Trace.set_enabled t true;
  t

let test_record_order_and_find () =
  let t = mk_trace () in
  Trace.record t ~t_ns:10 ~tid:1 ~tname:"a" Trace.Dispatch_in;
  Trace.record t ~t_ns:20 ~tid:1 ~tname:"a" (Trace.Mutex_lock "m");
  Trace.record t ~t_ns:30 ~tid:1 ~tname:"a" Trace.Dispatch_out;
  let evs = Trace.events t in
  check int "three events" 3 (List.length evs);
  check bool "chronological" true
    ((List.nth evs 0).Trace.t_ns < (List.nth evs 2).Trace.t_ns);
  check int "find locks" 1
    (List.length
       (Trace.find_all t (fun e ->
            match e.Trace.kind with Trace.Mutex_lock _ -> true | _ -> false)))

let test_disabled_records_nothing () =
  let t = Trace.create () in
  Trace.record t ~t_ns:1 ~tid:1 ~tname:"a" Trace.Dispatch_in;
  check int "no events" 0 (List.length (Trace.events t))

let test_clear () =
  let t = mk_trace () in
  Trace.record t ~t_ns:1 ~tid:1 ~tname:"a" Trace.Dispatch_in;
  Trace.clear t;
  check int "cleared" 0 (List.length (Trace.events t))

let test_kind_strings () =
  check string "lock" "lock m" (Trace.kind_to_string (Trace.Mutex_lock "m"));
  check string "sent" "sent SIGUSR1"
    (Trace.kind_to_string (Trace.Signal_sent Tu.Sigset.sigusr1));
  check string "prio" "prio 3->7" (Trace.kind_to_string (Trace.Prio_change (3, 7)));
  check bool "pp_event renders" true
    (String.length
       (Format.asprintf "%a" Trace.pp_event
          { Trace.t_ns = 1500; tid = 2; tname = "x"; kind = Trace.Thread_exit })
    > 10)

(* Gantt semantics on a hand-built trace: running '=', holding '#',
   blocked 'x', ready '.'.  Ready events are authoritative — the engine
   emits one whenever a thread enters the ready queue, so the hand-built
   trace mirrors that. *)
let test_gantt_symbols () =
  let t = mk_trace () in
  Trace.record t ~t_ns:0 ~tid:1 ~tname:"w" (Trace.Thread_create "w");
  Trace.record t ~t_ns:0 ~tid:1 ~tname:"w" Trace.Ready;
  Trace.record t ~t_ns:1000 ~tid:1 ~tname:"w" Trace.Dispatch_in;
  Trace.record t ~t_ns:2000 ~tid:1 ~tname:"w" (Trace.Mutex_lock "m");
  Trace.record t ~t_ns:4000 ~tid:1 ~tname:"w" (Trace.Mutex_unlock "m");
  Trace.record t ~t_ns:5000 ~tid:1 ~tname:"w" Trace.Ready;
  Trace.record t ~t_ns:5000 ~tid:1 ~tname:"w" Trace.Dispatch_out;
  Trace.record t ~t_ns:6000 ~tid:1 ~tname:"w" Trace.Dispatch_in;
  Trace.record t ~t_ns:6500 ~tid:1 ~tname:"w" (Trace.Mutex_block "m2");
  Trace.record t ~t_ns:7000 ~tid:1 ~tname:"w" Trace.Dispatch_out;
  Trace.record t ~t_ns:7500 ~tid:1 ~tname:"w" Trace.Ready;
  Trace.record t ~t_ns:7500 ~tid:1 ~tname:"w" Trace.Dispatch_in;
  Trace.record t ~t_ns:7600 ~tid:1 ~tname:"w" (Trace.Mutex_lock "m2");
  Trace.record t ~t_ns:9000 ~tid:1 ~tname:"w" Trace.Dispatch_out;
  let g = Trace.gantt t ~bucket_ns:1000 in
  let row =
    List.find (fun l -> String.length l > 2 && l.[0] = 'w')
      (String.split_on_char '\n' g)
  in
  let cells = String.sub row (String.index row '|' + 1) 9 in
  (* buckets: 0 ready, 1 running, 2-3 holding, 4 running, 5 ready,
     6 blocked, 7-8 holding after reacquisition *)
  check string "gantt cells" ".=##=.x##" cells

(* The bug this renderer had: a thread that blocked on a condition
   variable was painted as if it were merely off-CPU; and a dispatch-out
   with no Ready event was painted ready.  Cond waits now render as 'z'
   until the wake, and an unexplained suspension renders blank. *)
let test_gantt_cond_wait_renders_blocked () =
  let t = mk_trace () in
  Trace.record t ~t_ns:0 ~tid:1 ~tname:"w" Trace.Ready;
  Trace.record t ~t_ns:0 ~tid:1 ~tname:"w" Trace.Dispatch_in;
  Trace.record t ~t_ns:2000 ~tid:1 ~tname:"w" (Trace.Cond_block "c");
  Trace.record t ~t_ns:2000 ~tid:1 ~tname:"w" Trace.Dispatch_out;
  Trace.record t ~t_ns:5000 ~tid:1 ~tname:"w" (Trace.Cond_wake "c");
  Trace.record t ~t_ns:6000 ~tid:1 ~tname:"w" Trace.Dispatch_in;
  Trace.record t ~t_ns:7000 ~tid:1 ~tname:"w" Trace.Thread_exit;
  Trace.record t ~t_ns:9000 ~tid:2 ~tname:"other" (Trace.Note "horizon");
  let g = Trace.gantt t ~bucket_ns:1000 in
  let row =
    List.find (fun l -> String.length l > 2 && l.[0] = 'w')
      (String.split_on_char '\n' g)
  in
  let cells = String.sub row (String.index row '|' + 1) 9 in
  (* 0-1 running, 2-4 waiting on the cond, 5 ready after the wake,
     6 running, 7-8 gone — never '.' while suspended on the cond *)
  check string "cond wait renders blocked" "==zzz.=  " cells;
  (* a dispatch-out with no Ready and no block marker (sleep, join) is
     not ready: it must render blank, not '.' *)
  let t2 = mk_trace () in
  Trace.record t2 ~t_ns:0 ~tid:1 ~tname:"s" Trace.Ready;
  Trace.record t2 ~t_ns:0 ~tid:1 ~tname:"s" Trace.Dispatch_in;
  Trace.record t2 ~t_ns:1000 ~tid:1 ~tname:"s" Trace.Dispatch_out;
  Trace.record t2 ~t_ns:4000 ~tid:1 ~tname:"s" (Trace.Note "horizon");
  let g2 = Trace.gantt t2 ~bucket_ns:1000 in
  let row2 =
    List.find (fun l -> String.length l > 2 && l.[0] = 's')
      (String.split_on_char '\n' g2)
  in
  let cells2 = String.sub row2 (String.index row2 '|' + 1) 4 in
  check string "unexplained suspension is blank" "=   " cells2

let test_trace_stats_empty () =
  check int "no reports" 0 (List.length (Vm.Trace_stats.per_thread []))

let test_shared_semaphore_cross_process () =
  let m = Machine.create () in
  let sem = Shared.semaphore_create 0 in
  let got = ref 0 in
  ignore
    (Machine.spawn m ~name:"poster" (fun proc ->
         for _ = 1 to 5 do
           Pthread.delay proc ~ns:50_000;
           Shared.sem_post proc sem
         done;
         0));
  ignore
    (Machine.spawn m ~name:"waiter" (fun proc ->
         for _ = 1 to 5 do
           Shared.sem_wait proc sem;
           incr got
         done;
         0));
  ignore (Machine.run m);
  check int "five tokens crossed processes" 5 !got;
  check int "drained" 0 (Shared.sem_value sem)

let test_shared_semaphore_try () =
  let m = Machine.create () in
  let sem = Shared.semaphore_create 1 in
  ignore
    (Machine.spawn m ~name:"p" (fun proc ->
         check bool "first" true (Shared.sem_try_wait proc sem);
         check bool "second" false (Shared.sem_try_wait proc sem);
         Shared.sem_post proc sem;
         0));
  ignore (Machine.run m);
  (try
     ignore (Shared.semaphore_create (-1));
     Alcotest.fail "negative must raise"
   with Invalid_argument _ -> ())

let test_ctime_hazard_and_repair () =
  ignore
    (run_main (fun proc ->
         let first = Libc_r.Ctime_r.ctime proc 1_000_000 in
         let snapshot = !first in
         ignore (Libc_r.Ctime_r.ctime proc 2_000_000_000);
         check bool "static buffer clobbered" true (!first <> snapshot);
         let a = Libc_r.Ctime_r.ctime_r proc 1_000_000 in
         let b = Libc_r.Ctime_r.ctime_r proc 2_000_000_000 in
         check bool "reentrant results independent" true (a <> b);
         check string "stable" a (Libc_r.Ctime_r.ctime_r proc 1_000_000);
         0));
  ()

let suite =
  [
    ( "trace",
      [
        tc "record/find" test_record_order_and_find;
        tc "disabled" test_disabled_records_nothing;
        tc "clear" test_clear;
        tc "kind strings" test_kind_strings;
        tc "gantt symbols" test_gantt_symbols;
        tc "gantt cond wait renders blocked" test_gantt_cond_wait_renders_blocked;
        tc "stats empty" test_trace_stats_empty;
      ] );
    ( "shared_sem",
      [
        tc "cross-process tokens" test_shared_semaphore_cross_process;
        tc "try-wait" test_shared_semaphore_try;
      ] );
    ( "libc_r.ctime", [ tc "hazard and repair" test_ctime_hazard_and_repair ] );
  ]
