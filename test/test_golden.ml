(* The Table 2 contract, as a regression net: every metric with a published
   number must stay within 15% of it on both machine profiles.  Everything
   is deterministic, so a failure here means a code change moved the
   evaluation, not noise. *)

open Tu
module Cost_model = Vm.Cost_model

let check_row profile published measured metric =
  match published with
  | None -> ()
  | Some paper ->
      let dev = abs_float (measured -. paper) /. paper in
      check bool
        (Printf.sprintf "%s [%s]: %.1f vs paper %.1f (%.0f%%)" metric profile
           measured paper (100.0 *. dev))
        true (dev <= 0.15)

let test_table2_ipx () =
  List.iter
    (fun (r : Metrics.row) ->
      check_row "IPX" r.paper_ipx (r.measure Cost_model.sparc_ipx) r.metric)
    Metrics.rows

let test_table2_1plus () =
  List.iter
    (fun (r : Metrics.row) ->
      check_row "1+" r.paper_1plus (r.measure Cost_model.sparc_1plus) r.metric)
    Metrics.rows

let test_deterministic_measures () =
  (* the same metric measured twice is identical to the bit *)
  List.iter
    (fun (r : Metrics.row) ->
      check (Alcotest.float 0.0) ("stable: " ^ r.metric)
        (r.measure Cost_model.sparc_ipx)
        (r.measure Cost_model.sparc_ipx))
    Metrics.rows

(* Golden counterexamples: schedules the explorer once found, committed as
   .sched files (regenerate with `explore_demo --golden test/golden`).  A
   replay must reproduce the recorded failure without diverging — if it
   diverges, the library's scheduling-point structure changed and the file
   is stale. *)

let replay_golden file (scenario : Check.Scenarios.t) expect =
  match Check.Replay.of_file scenario.make ("golden/" ^ file) with
  | Error e -> Alcotest.fail e
  | Ok r ->
      (match r.diverged_at with
      | None -> ()
      | Some k ->
          Alcotest.failf "%s is stale: replay diverged at decision %d" file k);
      (match r.outcome with
      | Some kind -> expect kind
      | None -> Alcotest.failf "%s replayed without failing" file)

let test_golden_table4 () =
  replay_golden "table4_mixed.sched"
    (Check.Scenarios.table4 ~mode:Pthreads.Types.Stack_pop)
    (function
      | Check.Explore.Invariant_violated _ -> ()
      | k ->
          Alcotest.failf "expected the Table 4 violation, got %s"
            (Check.Explore.failure_kind_to_string k))

let test_golden_lost_wakeup () =
  replay_golden "lost_wakeup.sched"
    (Check.Scenarios.lost_wakeup ~fixed:false)
    (function
      | Check.Explore.Deadlocked _ -> ()
      | k ->
          Alcotest.failf "expected the lost-wakeup deadlock, got %s"
            (Check.Explore.failure_kind_to_string k))

let suite =
  [
    ( "golden",
      [
        tc "table 2 IPX within 15%" test_table2_ipx;
        tc "table 2 SPARC 1+ within 15%" test_table2_1plus;
        tc "metrics deterministic" test_deterministic_measures;
        tc "table 4 counterexample replays" test_golden_table4;
        tc "lost-wakeup counterexample replays" test_golden_lost_wakeup;
      ] );
  ]
