(* Counting semaphores (the layered implementation benchmarked in Table 2). *)

open Tu
open Pthreads
module Semaphore = Psem.Semaphore

let test_initial_value () =
  ignore
    (run_main (fun proc ->
         let s = Semaphore.create proc 3 in
         check int "value" 3 (Semaphore.value proc s);
         Semaphore.wait proc s;
         Semaphore.wait proc s;
         check int "after two P" 1 (Semaphore.value proc s);
         Semaphore.post proc s;
         check int "after V" 2 (Semaphore.value proc s);
         0));
  ()

let test_negative_rejected () =
  ignore
    (run_main (fun proc ->
         (try
            ignore (Semaphore.create proc (-1));
            Alcotest.fail "negative init must raise"
          with Invalid_argument _ -> ());
         0));
  ()

let test_try_wait () =
  ignore
    (run_main (fun proc ->
         let s = Semaphore.create proc 1 in
         check bool "first succeeds" true (Semaphore.try_wait proc s);
         check bool "second fails" false (Semaphore.try_wait proc s);
         Semaphore.post proc s;
         check bool "after post succeeds" true (Semaphore.try_wait proc s);
         0));
  ()

let test_blocking_wait () =
  ignore
    (run_main (fun proc ->
         let s = Semaphore.create proc 0 in
         let got = ref false in
         let t =
           Pthread.create_unit proc (fun () ->
               Semaphore.wait proc s;
               got := true)
         in
         Pthread.delay proc ~ns:50_000;
         check bool "still blocked" false !got;
         Semaphore.post proc s;
         ignore (Pthread.join proc t);
         check bool "released" true !got;
         0));
  ()

let test_pingpong () =
  ignore
    (run_main (fun proc ->
         let ping = Semaphore.create proc 0 in
         let pong = Semaphore.create proc 0 in
         let count = ref 0 in
         let t =
           Pthread.create_unit proc (fun () ->
               for _ = 1 to 10 do
                 Semaphore.wait proc ping;
                 incr count;
                 Semaphore.post proc pong
               done)
         in
         for _ = 1 to 10 do
           Semaphore.post proc ping;
           Semaphore.wait proc pong
         done;
         ignore (Pthread.join proc t);
         check int "10 rounds" 10 !count;
         0));
  ()

let test_value_never_negative () =
  ignore
    (run_main ~perverted:Types.Random_switch ~seed:3 (fun proc ->
         let s = Semaphore.create proc 2 in
         let violated = ref false in
         let body () =
           for _ = 1 to 5 do
             Semaphore.wait proc s;
             if Semaphore.value proc s < 0 then violated := true;
             Pthread.busy proc ~ns:3_000;
             Semaphore.post proc s
           done
         in
         let ts = List.init 4 (fun _ -> Pthread.create_unit proc body) in
         List.iter (fun t -> ignore (Pthread.join proc t)) ts;
         check bool "value stayed non-negative" false !violated;
         0));
  ()

let test_bounded_buffer () =
  ignore
    (run_main (fun proc ->
         let capacity = 3 in
         let slots = Semaphore.create proc capacity in
         let items = Semaphore.create proc 0 in
         let m = Mutex.create proc () in
         let buf = Queue.create () in
         let received = ref [] in
         let producer =
           Pthread.create_unit proc (fun () ->
               for i = 1 to 20 do
                 Semaphore.wait proc slots;
                 Mutex.lock proc m;
                 Queue.push i buf;
                 check bool "capacity respected" true (Queue.length buf <= capacity);
                 Mutex.unlock proc m;
                 Semaphore.post proc items
               done)
         in
         let consumer =
           Pthread.create_unit proc (fun () ->
               for _ = 1 to 20 do
                 Semaphore.wait proc items;
                 Mutex.lock proc m;
                 received := Queue.pop buf :: !received;
                 Mutex.unlock proc m;
                 Semaphore.post proc slots
               done)
         in
         ignore (Pthread.join proc producer);
         ignore (Pthread.join proc consumer);
         check (Alcotest.list int) "FIFO, nothing lost"
           (List.init 20 (fun i -> i + 1))
           (List.rev !received);
         0));
  ()

(* A waiter canceled while blocked inside [Semaphore.wait] must not leak
   the internal lock: [Cond.wait] reacquires it before acting on the
   cancellation, so without an unwind the dead waiter would hold it
   forever and every later operation on the semaphore would hang.  Sweep
   a cancellation over every fault point of the run — wherever it lands,
   the program must still terminate cleanly.  (Same sweep as the rwlock
   writer-cancel test; [Fault.Soak.run_one] also keeps the sanitizer on,
   so a leaked hold would additionally surface as a finding.) *)
let test_sem_cancel_no_leak () =
  let mk () =
    Pthread.make_proc (fun proc ->
        (* a cancel the modulo aims at main must pend, not kill the
           harness *)
        ignore (Cancel.set_state proc Types.Cancel_disabled : Types.cancel_state);
        let s = Semaphore.create proc ~name:"s" 0 in
        let w =
          Pthread.create proc
            ~attr:(Attr.with_name "waiter" Attr.default)
            (fun () ->
              Semaphore.wait proc s;
              0)
        in
        Pthread.delay proc ~ns:50_000 (* let the waiter block *);
        Semaphore.post proc s;
        ignore (Pthread.join proc w);
        (* a leaked internal lock would block these forever; the count is
           1 if the waiter died before consuming the post, 0 if it got
           through — either way one more V/P pair must go straight
           through *)
        Semaphore.post proc s;
        Semaphore.wait proc s;
        0)
  in
  let _, points, _ = Fault.Soak.run_one ~mk [] in
  check bool "fault points exist" true (points > 0);
  let injected_total = ref 0 in
  for p = 0 to points - 1 do
    let plan = [ { Fault.Plan.at = p; act = Fault.Plan.Cancel 1 } ] in
    let outcome, _, injected = Fault.Soak.run_one ~mk plan in
    injected_total := !injected_total + injected;
    match outcome with
    | None -> ()
    | Some k ->
        Alcotest.failf "cancel at fault point %d: %s" p
          (Check.Explore.failure_kind_to_string k)
  done;
  check bool "some cancels were injected" true (!injected_total > 0)

let suite =
  [
    ( "semaphore",
      [
        tc "initial value" test_initial_value;
        tc "negative rejected" test_negative_rejected;
        tc "try_wait" test_try_wait;
        tc "blocking wait" test_blocking_wait;
        tc "ping-pong" test_pingpong;
        tc "never negative (perverted)" test_value_never_negative;
        tc "bounded buffer" test_bounded_buffer;
        tc "canceled waiter leaks nothing" test_sem_cancel_no_leak;
      ] );
  ]
