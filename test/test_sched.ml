(* Scheduling: FIFO semantics, preemption, round-robin time slicing,
   priority changes. *)

open Tu
open Pthreads

let test_fifo_runs_to_block () =
  ignore
    (run_main (fun proc ->
         let log = ref [] in
         let t1 =
           Pthread.create_unit proc (fun () ->
               for _ = 1 to 5 do
                 Pthread.busy proc ~ns:10_000;
                 log := "A" :: !log
               done)
         in
         let t2 =
           Pthread.create_unit proc (fun () ->
               for _ = 1 to 5 do
                 Pthread.busy proc ~ns:10_000;
                 log := "B" :: !log
               done)
         in
         ignore (Pthread.join proc t1);
         ignore (Pthread.join proc t2);
         check (Alcotest.list string) "no interleaving under FIFO"
           [ "A"; "A"; "A"; "A"; "A"; "B"; "B"; "B"; "B"; "B" ]
           (List.rev !log);
         0));
  ()

let test_rr_interleaves () =
  ignore
    (run_main ~policy:(Types.Round_robin 20_000) (fun proc ->
         let log = ref [] in
         let worker name =
           Pthread.create_unit proc (fun () ->
               for _ = 1 to 5 do
                 Pthread.busy proc ~ns:15_000;
                 log := name :: !log
               done)
         in
         let a = worker "A" in
         let b = worker "B" in
         ignore (Pthread.join proc a);
         ignore (Pthread.join proc b);
         let s = String.concat "" (List.rev !log) in
         check bool (Printf.sprintf "interleaved (%s)" s) true
           (String.length s = 10
           && s <> "AAAAABBBBB" && s <> "BBBBBAAAAA");
         0));
  ()

let test_rr_does_not_preempt_higher () =
  (* Time-slicing rotates within a level; a higher-priority thread is never
     displaced by a lower one. *)
  ignore
    (run_main ~policy:(Types.Round_robin 10_000) (fun proc ->
         let log = ref [] in
         let hi =
           Pthread.create_unit proc
             ~attr:(Attr.with_prio 20 Attr.default)
             (fun () ->
               for _ = 1 to 5 do
                 Pthread.busy proc ~ns:15_000;
                 log := "H" :: !log
               done)
         in
         let lo =
           Pthread.create_unit proc
             ~attr:(Attr.with_prio 5 Attr.default)
             (fun () ->
               Pthread.busy proc ~ns:15_000;
               log := "L" :: !log)
         in
         ignore (Pthread.join proc hi);
         ignore (Pthread.join proc lo);
         check (Alcotest.list string) "all H before L"
           [ "H"; "H"; "H"; "H"; "H"; "L" ] (List.rev !log);
         0));
  ()

let test_preemption_on_wakeup () =
  ignore
    (run_main (fun proc ->
         let log = ref [] in
         let hi =
           Pthread.create_unit proc
             ~attr:(Attr.with_prio 20 Attr.default)
             (fun () ->
               Pthread.delay proc ~ns:50_000;
               log := "hi-woke" :: !log)
         in
         (* hi sleeps; main busy-loops; the timer wakeup must preempt main *)
         Pthread.busy proc ~ns:300_000;
         log := "main-done" :: !log;
         ignore (Pthread.join proc hi);
         check (Alcotest.list string) "wakeup preempted the busy loop"
           [ "hi-woke"; "main-done" ] (List.rev !log);
         0));
  ()

let test_set_priority_triggers_preemption () =
  ignore
    (run_main (fun proc ->
         let log = ref [] in
         let t =
           Pthread.create_unit proc
             ~attr:(Attr.with_prio 2 Attr.default)
             (fun () -> log := "low-ran" :: !log)
         in
         log := "before" :: !log;
         (* raising its priority above main's forces an immediate switch *)
         Pthread.set_priority proc t 25;
         log := "after" :: !log;
         ignore (Pthread.join proc t);
         check (Alcotest.list string) "boost preempted main"
           [ "before"; "low-ran"; "after" ] (List.rev !log);
         0));
  ()

let test_get_priority () =
  ignore
    (run_main (fun proc ->
         let t =
           Pthread.create_unit proc
             ~attr:(Attr.with_prio 12 Attr.default)
             (fun () -> Pthread.delay proc ~ns:100_000)
         in
         check int "effective" 12 (Pthread.get_priority proc t);
         check int "base" 12 (Pthread.get_base_priority proc t);
         Pthread.set_priority proc t 3;
         check int "lowered" 3 (Pthread.get_priority proc t);
         ignore (Pthread.join proc t);
         0));
  ()

let test_set_priority_range_checked () =
  ignore
    (run_main (fun proc ->
         (try
            Pthread.set_priority proc (Pthread.self proc) 99;
            Alcotest.fail "out of range must raise"
          with Types.Error (Errno.EINVAL, _) -> ());
         0));
  ()

let test_yield_rotates_equal_priority () =
  ignore
    (run_main (fun proc ->
         let log = ref [] in
         let t =
           Pthread.create_unit proc (fun () ->
               for _ = 1 to 3 do
                 log := "T" :: !log;
                 Pthread.yield proc
               done)
         in
         for _ = 1 to 3 do
           log := "M" :: !log;
           Pthread.yield proc
         done;
         ignore (Pthread.join proc t);
         check (Alcotest.list string) "strict alternation"
           [ "M"; "T"; "M"; "T"; "M"; "T" ] (List.rev !log);
         0));
  ()

let test_yield_alone_is_noop_semantically () =
  ignore
    (run_main (fun proc ->
         Pthread.yield proc;
         Pthread.yield proc;
         0));
  ()

let test_busy_advances_time () =
  ignore
    (run_main (fun proc ->
         let t0 = Pthread.now proc in
         Pthread.busy proc ~ns:123_000;
         check bool "clock advanced at least the busy time" true
           (Pthread.now proc - t0 >= 123_000);
         0));
  ()

let test_delay_duration () =
  ignore
    (run_main (fun proc ->
         let t0 = Pthread.now proc in
         Pthread.delay proc ~ns:2_000_000;
         check bool "slept long enough" true (Pthread.now proc - t0 >= 2_000_000);
         0));
  ()

let test_slice_accounting () =
  (* Time-slice expirations are real SIGALRMs through the universal
     handler: the run's statistics must show UNIX deliveries. *)
  let stats =
    run_stats ~policy:(Types.Round_robin 20_000) (fun proc ->
        let t = Pthread.create_unit proc (fun () -> Pthread.busy proc ~ns:200_000) in
        Pthread.busy proc ~ns:200_000;
        ignore (Pthread.join proc t);
        0)
  in
  check bool "slice signals delivered" true (stats.Engine.signals_delivered_unix > 5)

let suite =
  [
    ( "sched",
      [
        tc "FIFO runs to block" test_fifo_runs_to_block;
        tc "RR interleaves" test_rr_interleaves;
        tc "RR respects priority" test_rr_does_not_preempt_higher;
        tc "wakeup preempts" test_preemption_on_wakeup;
        tc "set_priority preempts" test_set_priority_triggers_preemption;
        tc "get_priority" test_get_priority;
        tc "priority range checked" test_set_priority_range_checked;
        tc "yield rotates" test_yield_rotates_equal_priority;
        tc "yield alone" test_yield_alone_is_noop_semantically;
        tc "busy advances time" test_busy_advances_time;
        tc "delay duration" test_delay_duration;
        tc "slice accounting" test_slice_accounting;
      ] );
  ]
